//! Static campaign-spec analysis: contradiction findings, conservative
//! audience intervals and a nanotargeting-risk verdict — all computed from
//! per-interest marginals without running delivery or enumerating the
//! population.
//!
//! The paper's §8 countermeasure discussion needs a *pre-flight* judgement:
//! can a campaign be rejected (or waved through) before the platform spends a
//! full reach-engine conjunction sweep on it?  The [`SpecAnalyzer`] answers
//! with three artefacts:
//!
//! 1. **Findings** ([`SpecFinding`]) — structural defects of the spec, from
//!    outright contradictions (empty effective age window, empty location
//!    set, an interest no user can carry) through rule violations the
//!    builder would reject, down to subsumed clauses that cannot restrict
//!    the audience.
//! 2. **An audience interval** ([`AudienceInterval`]) — a sound
//!    `[lower, upper]` bracket on the true active audience, derived from
//!    per-interest marginals: the upper bound is the Fréchet `min` of the
//!    marginals (capped by the location filter's population), the lower
//!    bound is the inclusion–exclusion (Fréchet) bound
//!    `Σᵢ AS(i) − (k−1)·N`.  Both bounds are multiplied by the same gender
//!    and age fractions the reach endpoint applies, so they bracket
//!    [`AdsManagerApi::true_reach`](crate::AdsManagerApi::true_reach)
//!    whenever the marginals are exact.
//! 3. **A nanotargeting-risk verdict** ([`NanotargetingRisk`]) — the
//!    interest depth of the spec held against the paper's Table-1
//!    `N_P` thresholds (`N(LP)₀.₉ ≈ 4.2`, `N(R)₀.₉ ≈ 22.2`) and its §8
//!    proposed cap, consumable by [`PlatformPolicy`](crate::PlatformPolicy)
//!    implementations and the FDVT risk UI.

use crate::reach::{age_fraction, gender_fraction};
use crate::targeting::{Gender, TargetingBuilder, TargetingSpec, MAX_INTERESTS, MAX_LOCATIONS};
use crate::CampaignSpec;
use fbsim_population::countries::{country_index, CountryCode, TARGETING_UNIVERSE};
use fbsim_population::reach::{CountryFilter, ReachEngine};
use fbsim_population::{InterestCatalog, InterestId, MaterializedUser};
use serde::{Deserialize, Serialize};

/// Platform-wide minimum targetable age.
pub const MIN_AGE: u8 = 13;
/// Platform-wide maximum targetable age.
pub const MAX_AGE: u8 = 65;

// ---------------------------------------------------------------------------
// Thresholds and risk verdicts
// ---------------------------------------------------------------------------

/// The paper's Table-1 `N_P` thresholds plus its §8 policy knobs.
///
/// `N_P` is the number of interests after which a fraction `P` of users is
/// unique: with the *least-popular* selection strategy ~4.2 interests
/// isolate 90 % of users, with *random* selection ~22.2 do.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NpThresholds {
    /// `N(LP)₀.₉` — interests needed to isolate 90 % of users when the
    /// attacker picks the user's least-popular interests (Table 1).
    pub lp_n90: f64,
    /// `N(R)₀.₉` — interests needed under random selection (Table 1).
    pub random_n90: f64,
    /// The §8 proposed cap on interests per audience.
    pub proposed_cap: usize,
    /// Audience size below which a campaign is considered individually
    /// identifying regardless of interest depth (§8 minimum-audience scale).
    pub small_audience: f64,
}

impl NpThresholds {
    /// The headline values from the paper (Table 1 and §8).
    pub const fn paper() -> Self {
        Self { lp_n90: 4.2, random_n90: 22.2, proposed_cap: 9, small_audience: 1000.0 }
    }
}

impl Default for NpThresholds {
    fn default() -> Self {
        Self::paper()
    }
}

/// Structured nanotargeting-risk verdict for a spec, ordered from benign to
/// critical.  Consumed by [`PlatformPolicy`](crate::PlatformPolicy)
/// pre-flight checks and the FDVT risk UI.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub enum NanotargetingRisk {
    /// Interest depth below every Table-1 threshold.
    Low {
        /// Number of distinct interests in the spec.
        interests: usize,
    },
    /// Depth at or above `⌈N(LP)₀.₉⌉`: nanotargeting succeeds for ~90 % of
    /// targets if the attacker knows the user's rarest interests.
    Possible {
        /// Number of distinct interests in the spec.
        interests: usize,
    },
    /// Depth at or above the §8 proposed cap: beyond what the paper would
    /// allow any advertiser to combine.
    Elevated {
        /// Number of distinct interests in the spec.
        interests: usize,
    },
    /// Depth at or above `N(R)₀.₉`: even randomly chosen interests isolate a
    /// single user with probability ≥ 0.9.
    Severe {
        /// Number of distinct interests in the spec.
        interests: usize,
    },
    /// The audience upper bound is below the §8 minimum-audience scale —
    /// the campaign is individually identifying whatever its depth.
    Critical {
        /// Number of distinct interests in the spec.
        interests: usize,
        /// Proven upper bound on the active audience.
        audience_upper: f64,
    },
}

impl NanotargetingRisk {
    /// Classifies an interest depth and proven audience upper bound against
    /// a set of thresholds.
    pub fn assess(interests: usize, audience_upper: f64, t: &NpThresholds) -> Self {
        let k = interests as f64;
        if audience_upper < t.small_audience {
            NanotargetingRisk::Critical { interests, audience_upper }
        } else if k >= t.random_n90 {
            NanotargetingRisk::Severe { interests }
        } else if interests >= t.proposed_cap {
            NanotargetingRisk::Elevated { interests }
        } else if k >= t.lp_n90.ceil() {
            NanotargetingRisk::Possible { interests }
        } else {
            NanotargetingRisk::Low { interests }
        }
    }

    /// Whether the verdict is at or above [`NanotargetingRisk::Elevated`] —
    /// the point where the paper's §8 proposals would intervene.
    pub fn is_actionable(&self) -> bool {
        matches!(
            self,
            NanotargetingRisk::Elevated { .. }
                | NanotargetingRisk::Severe { .. }
                | NanotargetingRisk::Critical { .. }
        )
    }

    /// Short label for dashboards and the FDVT UI.
    pub fn label(&self) -> &'static str {
        match self {
            NanotargetingRisk::Low { .. } => "low",
            NanotargetingRisk::Possible { .. } => "possible",
            NanotargetingRisk::Elevated { .. } => "elevated",
            NanotargetingRisk::Severe { .. } => "severe",
            NanotargetingRisk::Critical { .. } => "critical",
        }
    }
}

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

/// Severity of a [`SpecFinding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// A clause that cannot restrict the audience (dead weight, not a bug).
    Redundancy,
    /// A rule the [`TargetingBuilder`] would reject.
    Violation,
    /// The spec can never match any user.
    Contradiction,
}

/// One structural defect found in a spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpecFinding {
    /// No usable location and the spec is not worldwide — location is
    /// compulsory, so the audience is empty.
    EmptyLocations,
    /// The effective age window `[lo, hi] ∩ [13, 65]` contains no age.
    EmptyAgeWindow {
        /// Requested lower bound.
        lo: u8,
        /// Requested upper bound.
        hi: u8,
    },
    /// An interest id outside the catalog — no user can carry it.
    UnknownInterest(InterestId),
    /// A location outside the 50-country targeting universe.
    UnknownLocation(CountryCode),
    /// The same interest listed more than once.
    DuplicateInterest(InterestId),
    /// The same location listed more than once.
    DuplicateLocation(CountryCode),
    /// More interests than [`MAX_INTERESTS`].
    TooManyInterests {
        /// Interests supplied.
        used: usize,
        /// The cap.
        max: usize,
    },
    /// More locations than [`MAX_LOCATIONS`].
    TooManyLocations {
        /// Locations supplied.
        used: usize,
        /// The cap.
        max: usize,
    },
    /// An age bound outside the platform's 13–65 limits while the window
    /// still admits ages — the rule behind
    /// [`TargetingError::InvalidAgeRange`](crate::targeting::TargetingError::InvalidAgeRange).
    InvalidAgeRange {
        /// Requested lower bound.
        lo: u8,
        /// Requested upper bound.
        hi: u8,
    },
    /// The age range covers the whole 13–65 span — subsumed by the default.
    RedundantAgeRange {
        /// Requested lower bound.
        lo: u8,
        /// Requested upper bound.
        hi: u8,
    },
    /// The explicit location list covers the entire targeting universe —
    /// subsumed by worldwide targeting.
    LocationsCoverUniverse,
}

impl SpecFinding {
    /// The finding's severity class.
    pub fn severity(&self) -> Severity {
        match self {
            SpecFinding::EmptyLocations
            | SpecFinding::EmptyAgeWindow { .. }
            | SpecFinding::UnknownInterest(_) => Severity::Contradiction,
            SpecFinding::UnknownLocation(_)
            | SpecFinding::DuplicateInterest(_)
            | SpecFinding::DuplicateLocation(_)
            | SpecFinding::TooManyInterests { .. }
            | SpecFinding::TooManyLocations { .. }
            | SpecFinding::InvalidAgeRange { .. } => Severity::Violation,
            SpecFinding::RedundantAgeRange { .. } | SpecFinding::LocationsCoverUniverse => {
                Severity::Redundancy
            }
        }
    }
}

impl std::fmt::Display for SpecFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecFinding::EmptyLocations => write!(f, "no usable location — audience is empty"),
            SpecFinding::EmptyAgeWindow { lo, hi } => {
                write!(f, "age window {lo}-{hi} admits no targetable age")
            }
            SpecFinding::UnknownInterest(id) => {
                write!(f, "interest #{} is not in the catalog", id.0)
            }
            SpecFinding::UnknownLocation(c) => {
                write!(f, "location {c} is outside the targeting universe")
            }
            SpecFinding::DuplicateInterest(id) => write!(f, "interest #{} listed twice", id.0),
            SpecFinding::DuplicateLocation(c) => write!(f, "location {c} listed twice"),
            SpecFinding::TooManyInterests { used, max } => {
                write!(f, "{used} interests exceeds the cap of {max}")
            }
            SpecFinding::TooManyLocations { used, max } => {
                write!(f, "{used} locations exceeds the cap of {max}")
            }
            SpecFinding::InvalidAgeRange { lo, hi } => {
                write!(f, "age window {lo}-{hi} reaches outside the 13-65 platform limits")
            }
            SpecFinding::RedundantAgeRange { lo, hi } => {
                write!(f, "age window {lo}-{hi} covers the full span — redundant")
            }
            SpecFinding::LocationsCoverUniverse => {
                write!(f, "location list covers the whole universe — same as worldwide")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Audience interval
// ---------------------------------------------------------------------------

/// A sound `[lower, upper]` bracket on a spec's true active audience.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AudienceInterval {
    /// Proven lower bound (Fréchet inclusion–exclusion).
    pub lower: f64,
    /// Proven upper bound (minimum marginal, capped by the location
    /// filter's population).
    pub upper: f64,
}

impl AudienceInterval {
    /// The degenerate empty interval.
    pub const EMPTY: Self = Self { lower: 0.0, upper: 0.0 };

    /// Whether a measured audience lies inside the bracket.
    pub fn contains(&self, audience: f64) -> bool {
        self.lower <= audience && audience <= self.upper
    }

    /// Whether the bracket pins the audience to a single value.
    pub fn is_exact(&self) -> bool {
        self.lower >= self.upper
    }

    /// Width of the bracket.
    pub fn width(&self) -> f64 {
        (self.upper - self.lower).max(0.0)
    }
}

// ---------------------------------------------------------------------------
// Marginals
// ---------------------------------------------------------------------------

/// Per-interest audience marginals plus per-country populations — the only
/// world statistics the analyzer needs.
///
/// Two constructors with different accuracy/cost trade-offs:
///
/// * [`InterestMarginals::from_engine`] sweeps the panel once per interest
///   and once per country.  The resulting bounds are *exact* with respect to
///   the reach engine's expected-audience semantics, so static accept/reject
///   decisions provably agree with the dynamic policy path.
/// * [`InterestMarginals::from_catalog`] uses the catalog's calibration
///   targets and the universe's advertised country shares — free to build,
///   but carries the calibration residual, so its verdicts are advisory.
#[derive(Debug, Clone)]
pub struct InterestMarginals {
    /// Expected worldwide audience per interest, indexed by `InterestId.0`.
    marginals: Vec<f64>,
    /// Expected population per country index in the targeting universe.
    country_population: Vec<f64>,
    /// Total worldwide population.
    population: f64,
    /// Whether the marginals are exact with respect to the reach engine
    /// (engine-measured) or carry the catalog calibration residual.
    exact: bool,
}

impl InterestMarginals {
    /// Measures exact marginals from a reach engine (one panel sweep per
    /// interest and per country).
    pub fn from_engine(engine: &ReachEngine<'_>) -> Self {
        let catalog = engine.catalog();
        let marginals: Vec<f64> =
            (0..catalog.len()).map(|i| engine.single_reach(InterestId(i as u32))).collect();
        let country_population: Vec<f64> = (0..TARGETING_UNIVERSE.len())
            .map(|c| engine.conjunction_reach_in(&[], CountryFilter::of(&[c as u16])))
            .collect();
        Self { marginals, country_population, population: engine.population(), exact: true }
    }

    /// Approximates marginals from the catalog's calibration targets and the
    /// universe's advertised per-country user counts.
    pub fn from_catalog(catalog: &InterestCatalog, population: f64) -> Self {
        let marginals: Vec<f64> = catalog.interests().iter().map(|i| i.target_audience).collect();
        let total: f64 = TARGETING_UNIVERSE.iter().map(|c| c.users_millions).sum();
        let country_population: Vec<f64> =
            TARGETING_UNIVERSE.iter().map(|c| population * c.users_millions / total).collect();
        Self { marginals, country_population, population, exact: false }
    }

    /// Whether the marginals are exact with respect to the reach engine.
    /// Interval-based static accept/reject decisions are only sound when
    /// this holds; catalog-approximated marginals are advisory.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// The worldwide marginal for one interest, `None` when the id is not in
    /// the catalog.
    pub fn marginal(&self, id: InterestId) -> Option<f64> {
        self.marginals.get(id.0 as usize).copied()
    }

    /// Total worldwide population.
    pub fn population(&self) -> f64 {
        self.population
    }

    /// Expected population inside a set of country indices; `None` means
    /// worldwide.
    fn filter_population(&self, indices: Option<&[u16]>) -> f64 {
        match indices {
            None => self.population,
            Some(idx) => idx
                .iter()
                .map(|&i| self.country_population.get(i as usize).copied().unwrap_or(0.0))
                .sum(),
        }
    }
}

// ---------------------------------------------------------------------------
// Analysis result
// ---------------------------------------------------------------------------

/// The analyzer's verdict on one spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecAnalysis {
    /// Structural findings, worst first.
    pub findings: Vec<SpecFinding>,
    /// Bracket on the true active audience (the empty interval for
    /// contradictory specs); guaranteed to contain the true audience only
    /// when [`interval_sound`](SpecAnalysis::interval_sound) holds.
    pub interval: AudienceInterval,
    /// Whether the interval provably brackets the reach engine's true
    /// audience: true for engine-measured marginals
    /// ([`InterestMarginals::from_engine`]) and for structural
    /// contradictions (whose empty interval holds whatever the marginals),
    /// false for catalog-approximated marginals.  Policies must treat
    /// interval-based static decisions as advisory when this is false.
    pub interval_sound: bool,
    /// Nanotargeting-risk verdict.
    pub risk: NanotargetingRisk,
}

impl SpecAnalysis {
    /// Whether any finding proves the spec matches no user.
    pub fn is_contradictory(&self) -> bool {
        self.findings.iter().any(|f| f.severity() == Severity::Contradiction)
    }

    /// Whether the spec provably matches no user — either a structural
    /// contradiction or an audience upper bound below one user.
    pub fn provably_empty(&self) -> bool {
        self.is_contradictory() || self.interval.upper < 0.5
    }

    /// The worst severity among the findings, `None` when the spec is clean.
    pub fn worst_severity(&self) -> Option<Severity> {
        self.findings.iter().map(SpecFinding::severity).max()
    }
}

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

/// Static spec analyzer over a fixed set of [`InterestMarginals`].
#[derive(Debug, Clone)]
pub struct SpecAnalyzer {
    marginals: InterestMarginals,
    thresholds: NpThresholds,
}

impl SpecAnalyzer {
    /// Builds an analyzer over precomputed marginals.
    pub fn new(marginals: InterestMarginals) -> Self {
        Self { marginals, thresholds: NpThresholds::paper() }
    }

    /// Builds an analyzer with exact engine-measured marginals.
    pub fn from_engine(engine: &ReachEngine<'_>) -> Self {
        Self::new(InterestMarginals::from_engine(engine))
    }

    /// Builds an analyzer with catalog-approximated marginals.
    pub fn from_catalog(catalog: &InterestCatalog, population: f64) -> Self {
        Self::new(InterestMarginals::from_catalog(catalog, population))
    }

    /// Replaces the risk thresholds (defaults to the paper's Table-1 /
    /// §8 values).
    pub fn with_thresholds(mut self, thresholds: NpThresholds) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// The active risk thresholds.
    pub fn thresholds(&self) -> &NpThresholds {
        &self.thresholds
    }

    /// The marginals the analyzer reasons over.
    pub fn marginals(&self) -> &InterestMarginals {
        &self.marginals
    }

    /// Analyzes a validated [`TargetingSpec`].
    ///
    /// Builder-checked rules (duplicates, caps, unknown locations) cannot
    /// recur here, so findings are limited to redundancies and
    /// catalog-unknown interests; the main outputs are the audience
    /// interval and the risk verdict.
    pub fn analyze(&self, spec: &TargetingSpec) -> SpecAnalysis {
        let location_indices;
        let indices: Option<&[u16]> = if spec.is_worldwide() {
            None
        } else {
            location_indices = spec.location_indices();
            Some(&location_indices)
        };
        self.analyze_parts(
            spec.locations(),
            indices,
            spec.interests(),
            spec.gender(),
            spec.age_range(),
        )
    }

    /// Analyzes a whole campaign (its targeting spec).
    pub fn analyze_campaign(&self, campaign: &CampaignSpec) -> SpecAnalysis {
        self.analyze(&campaign.targeting)
    }

    /// Analyzes a raw, not-yet-validated [`TargetingBuilder`] — the path
    /// that can surface contradictions and builder-rule violations.
    pub fn analyze_raw(&self, builder: &TargetingBuilder) -> SpecAnalysis {
        let codes = builder.staged_locations();
        // The worldwide shortcut only applies to a clean universe list:
        // exactly one entry per universe country.  A covering list that also
        // carries duplicates still goes through the explicit path so the
        // duplicate findings surface.
        if builder.is_worldwide() && codes.len() == TARGETING_UNIVERSE.len() {
            return self.analyze_parts(
                codes,
                None,
                builder.staged_interests(),
                builder.staged_gender(),
                builder.staged_age_range(),
            );
        }
        // Resolve the explicit list, dropping unknown codes: an unknown
        // location contributes no users, so the sound filter population is
        // the sum over the known ones.
        let known: Vec<u16> =
            codes.iter().filter_map(|&c| country_index(c).map(|i| i as u16)).collect();
        self.analyze_parts(
            codes,
            Some(&known),
            builder.staged_interests(),
            builder.staged_gender(),
            builder.staged_age_range(),
        )
    }

    /// Core analysis over resolved parts.  `indices` is `None` for
    /// worldwide, otherwise the resolved (known-only) country indices for
    /// the `codes` list.
    fn analyze_parts(
        &self,
        codes: &[CountryCode],
        indices: Option<&[u16]>,
        interests: &[InterestId],
        gender: Option<Gender>,
        age_range: Option<(u8, u8)>,
    ) -> SpecAnalysis {
        let mut findings = Vec::new();

        // --- locations -----------------------------------------------------
        let worldwide = indices.is_none();
        if !worldwide {
            for (i, &c) in codes.iter().enumerate() {
                // Unknown and duplicate are independent defects: a repeated
                // unknown code carries both.  Unknown is reported once per
                // distinct code, duplicate once per repetition.
                if country_index(c).is_none() && !codes[..i].contains(&c) {
                    findings.push(SpecFinding::UnknownLocation(c));
                }
                if codes[..i].contains(&c) {
                    findings.push(SpecFinding::DuplicateLocation(c));
                }
            }
            if codes.len() > MAX_LOCATIONS {
                findings
                    .push(SpecFinding::TooManyLocations { used: codes.len(), max: MAX_LOCATIONS });
            }
        }
        let mut unique_indices: Vec<u16> = indices.map(<[u16]>::to_vec).unwrap_or_default();
        unique_indices.sort_unstable();
        unique_indices.dedup();
        if !worldwide && unique_indices.is_empty() {
            findings.push(SpecFinding::EmptyLocations);
        }
        if !worldwide && unique_indices.len() == TARGETING_UNIVERSE.len() {
            findings.push(SpecFinding::LocationsCoverUniverse);
        }

        // --- interests -----------------------------------------------------
        let mut unique_interests: Vec<InterestId> = Vec::with_capacity(interests.len());
        for (i, &id) in interests.iter().enumerate() {
            if self.marginals.marginal(id).is_none() {
                findings.push(SpecFinding::UnknownInterest(id));
            }
            if interests[..i].contains(&id) {
                findings.push(SpecFinding::DuplicateInterest(id));
            } else {
                unique_interests.push(id);
            }
        }
        if interests.len() > MAX_INTERESTS {
            findings
                .push(SpecFinding::TooManyInterests { used: interests.len(), max: MAX_INTERESTS });
        }

        // --- age window ----------------------------------------------------
        if let Some((lo, hi)) = age_range {
            let eff_lo = lo.max(MIN_AGE);
            let eff_hi = hi.min(MAX_AGE);
            if eff_lo > eff_hi {
                findings.push(SpecFinding::EmptyAgeWindow { lo, hi });
            } else if lo < MIN_AGE || hi > MAX_AGE {
                findings.push(SpecFinding::InvalidAgeRange { lo, hi });
            } else if lo <= MIN_AGE && hi >= MAX_AGE {
                findings.push(SpecFinding::RedundantAgeRange { lo, hi });
            }
        }

        findings.sort_by_key(|f| std::cmp::Reverse(f.severity()));

        let contradictory = findings.iter().any(|f| f.severity() == Severity::Contradiction);
        let interval = if contradictory {
            AudienceInterval::EMPTY
        } else if worldwide {
            self.interval_for(&unique_interests, None, gender, age_range)
        } else {
            // Deduplicated indices: a repeated location in a raw builder
            // must not double-count its population in the bounds.
            self.interval_for(&unique_interests, Some(&unique_indices), gender, age_range)
        };
        // A contradiction's empty interval is structural — sound whatever
        // the marginals; otherwise soundness follows the marginal source.
        let interval_sound = self.marginals.is_exact() || contradictory;
        let risk =
            NanotargetingRisk::assess(unique_interests.len(), interval.upper, &self.thresholds);

        SpecAnalysis { findings, interval, interval_sound, risk }
    }

    /// Sound audience bracket for a deduplicated conjunction of interests
    /// inside a location filter, with the endpoint's gender/age fractions
    /// applied to both ends.
    ///
    /// With `N` the filter population, `E` the population outside the filter
    /// and `AS(i)` the worldwide marginal of interest `i`:
    ///
    /// * `upper = min(minᵢ AS(i), N) · g · a` — a conjunction can reach at
    ///   most its rarest term, and no more than the filter holds;
    /// * `lower = max(0, Σᵢ max(0, AS(i) − E) − (k−1)·N) · g · a` — the
    ///   Fréchet / inclusion–exclusion bound, with each marginal first
    ///   discounted by the users that may live outside the filter.
    ///
    /// Both hold pointwise for the engine's per-user carriage probabilities
    /// (Weierstrass product inequality), so the bracket always contains
    /// [`AdsManagerApi::true_reach`](crate::AdsManagerApi::true_reach) when
    /// the marginals come from [`InterestMarginals::from_engine`].
    fn interval_for(
        &self,
        interests: &[InterestId],
        indices: Option<&[u16]>,
        gender: Option<Gender>,
        age_range: Option<(u8, u8)>,
    ) -> AudienceInterval {
        let pop_filter = self.marginals.filter_population(indices);
        let g = gender_fraction(gender);
        let a = age_fraction(age_range);
        let k = interests.len();
        if k == 0 {
            // An unrefined spec reaches the whole filter exactly.
            let exact = pop_filter * g * a;
            return AudienceInterval { lower: exact, upper: exact };
        }
        let pop_excluded = (self.marginals.population() - pop_filter).max(0.0);
        let mut min_marginal = f64::INFINITY;
        let mut frechet_sum = 0.0;
        for &id in interests {
            let m = self.marginals.marginal(id).unwrap_or(0.0);
            min_marginal = min_marginal.min(m);
            frechet_sum += (m - pop_excluded).max(0.0);
        }
        let upper = min_marginal.min(pop_filter).max(0.0) * g * a;
        let lower = (frechet_sum - (k as f64 - 1.0) * pop_filter).max(0.0) * g * a;
        AudienceInterval { lower: lower.min(upper), upper }
    }
}

// ---------------------------------------------------------------------------
// Direct matching semantics (for property tests)
// ---------------------------------------------------------------------------

/// Whether a raw builder's spec could match a materialised user, evaluated
/// directly from the targeting semantics (not via the analyzer's findings):
/// the user's country must be listed (or the spec worldwide), the user must
/// carry every requested interest, and the age window must admit at least
/// one targetable age.
///
/// This is the ground truth the *contradiction* property tests compare the
/// analyzer against.
pub fn raw_spec_matches(builder: &TargetingBuilder, user: &MaterializedUser) -> bool {
    if !builder.is_worldwide() {
        let listed = builder
            .staged_locations()
            .iter()
            .any(|&c| country_index(c) == Some(user.country as usize));
        if !listed {
            return false;
        }
    }
    if !builder.staged_interests().iter().all(|id| user.interests.contains(id)) {
        return false;
    }
    if let Some((lo, hi)) = builder.staged_age_range() {
        if lo.max(MIN_AGE) > hi.min(MAX_AGE) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbsim_population::{World, WorldConfig};

    fn test_world() -> World {
        World::generate(WorldConfig::test_scale(7)).expect("world generates")
    }

    fn analyzer(world: &World) -> SpecAnalyzer {
        SpecAnalyzer::from_engine(&world.reach_engine())
    }

    #[test]
    fn unrefined_worldwide_spec_is_exact() {
        let world = test_world();
        let an = analyzer(&world);
        let spec = TargetingSpec::builder().worldwide().build().expect("valid spec");
        let analysis = an.analyze(&spec);
        assert!(analysis.findings.is_empty());
        assert!(analysis.interval.is_exact());
        let api = crate::AdsManagerApi::new(&world, crate::ReportingEra::Post2018);
        let true_reach = api.true_reach(&spec);
        assert!(
            (analysis.interval.upper - true_reach).abs() < 1e-6,
            "exact interval {:?} vs true {true_reach}",
            analysis.interval,
        );
    }

    #[test]
    fn interval_contains_true_reach_for_engine_marginals() {
        let world = test_world();
        let an = analyzer(&world);
        let api = crate::AdsManagerApi::new(&world, crate::ReportingEra::Post2018);
        let spec = TargetingSpec::builder()
            .worldwide()
            .interest(InterestId(3))
            .interest(InterestId(10))
            .age_range(20, 40)
            .build()
            .expect("valid spec");
        let analysis = an.analyze(&spec);
        let true_reach = api.true_reach(&spec);
        assert!(
            analysis.interval.contains(true_reach),
            "interval {:?} must contain {true_reach}",
            analysis.interval,
        );
    }

    #[test]
    fn empty_age_window_is_contradictory() {
        let world = test_world();
        let an = analyzer(&world);
        let builder = TargetingSpec::builder().worldwide().age_range(40, 20);
        let analysis = an.analyze_raw(&builder);
        assert!(analysis.is_contradictory());
        assert_eq!(analysis.interval, AudienceInterval::EMPTY);
        assert!(analysis
            .findings
            .iter()
            .any(|f| matches!(f, SpecFinding::EmptyAgeWindow { lo: 40, hi: 20 })));
    }

    #[test]
    fn unknown_interest_is_contradictory() {
        let world = test_world();
        let an = analyzer(&world);
        let bogus = InterestId(u32::MAX);
        let builder = TargetingSpec::builder().worldwide().interest(bogus);
        let analysis = an.analyze_raw(&builder);
        assert!(analysis.is_contradictory());
        assert!(analysis.provably_empty());
    }

    #[test]
    fn duplicates_and_full_span_age_are_flagged() {
        let world = test_world();
        let an = analyzer(&world);
        let us = TARGETING_UNIVERSE[0].code;
        let builder = TargetingSpec::builder()
            .location(us)
            .location(us)
            .interest(InterestId(1))
            .interest(InterestId(1))
            .age_range(13, 65);
        let analysis = an.analyze_raw(&builder);
        assert!(!analysis.is_contradictory());
        assert!(analysis.findings.contains(&SpecFinding::DuplicateLocation(us)));
        assert!(analysis.findings.contains(&SpecFinding::DuplicateInterest(InterestId(1))));
        assert!(analysis
            .findings
            .iter()
            .any(|f| matches!(f, SpecFinding::RedundantAgeRange { lo: 13, hi: 65 })));
        // Findings are ordered worst-first.
        let sevs: Vec<Severity> = analysis.findings.iter().map(SpecFinding::severity).collect();
        let mut sorted = sevs.clone();
        sorted.sort_by_key(|s| std::cmp::Reverse(*s));
        assert_eq!(sevs, sorted);
    }

    #[test]
    fn repeated_unknown_location_gets_both_findings() {
        let world = test_world();
        let an = analyzer(&world);
        let zz = CountryCode::new("ZZ");
        let builder =
            TargetingSpec::builder().location(zz).location(zz).location(TARGETING_UNIVERSE[0].code);
        let analysis = an.analyze_raw(&builder);
        let unknowns =
            analysis.findings.iter().filter(|f| **f == SpecFinding::UnknownLocation(zz)).count();
        assert_eq!(unknowns, 1);
        assert!(analysis.findings.contains(&SpecFinding::DuplicateLocation(zz)));
        // One known location remains, so the spec is not contradictory.
        assert!(!analysis.is_contradictory());
    }

    #[test]
    fn out_of_bounds_age_window_is_a_violation() {
        let world = test_world();
        let an = analyzer(&world);
        let builder = TargetingSpec::builder().worldwide().age_range(12, 70);
        let analysis = an.analyze_raw(&builder);
        assert!(!analysis.is_contradictory());
        assert!(analysis
            .findings
            .iter()
            .any(|f| matches!(f, SpecFinding::InvalidAgeRange { lo: 12, hi: 70 })));
        assert_eq!(analysis.worst_severity(), Some(Severity::Violation));
        // In-bounds full-span windows stay a mere redundancy.
        let full = an.analyze_raw(&TargetingSpec::builder().worldwide().age_range(13, 65));
        assert_eq!(full.worst_severity(), Some(Severity::Redundancy));
    }

    #[test]
    fn duplicate_locations_do_not_inflate_the_interval() {
        let world = test_world();
        let an = analyzer(&world);
        let us = TARGETING_UNIVERSE[0].code;
        let raw = TargetingSpec::builder().location(us).location(us).interest(InterestId(1));
        let deduped =
            TargetingSpec::builder().location(us).interest(InterestId(1)).build().expect("valid");
        assert_eq!(an.analyze_raw(&raw).interval, an.analyze(&deduped).interval);
    }

    #[test]
    fn fifty_duplicates_are_not_worldwide() {
        let world = test_world();
        let an = analyzer(&world);
        // 50 copies of an unknown code must not classify as worldwide: the
        // audience is provably empty, not the full population.
        let zz = CountryCode::new("ZZ");
        let mut builder = TargetingSpec::builder();
        for _ in 0..MAX_LOCATIONS {
            builder = builder.location(zz);
        }
        let analysis = an.analyze_raw(&builder);
        assert!(analysis.is_contradictory());
        assert_eq!(analysis.interval, AudienceInterval::EMPTY);
        assert!(analysis.findings.contains(&SpecFinding::UnknownLocation(zz)));
        assert!(analysis.findings.contains(&SpecFinding::EmptyLocations));
    }

    #[test]
    fn universe_cover_with_duplicates_surfaces_findings() {
        let world = test_world();
        let an = analyzer(&world);
        // The whole universe plus one repeat: worldwide by membership, but
        // the explicit path still reports the duplicate and the subsumption.
        let mut builder = TargetingSpec::builder().worldwide();
        builder = builder.location(TARGETING_UNIVERSE[0].code);
        let analysis = an.analyze_raw(&builder);
        assert!(analysis
            .findings
            .contains(&SpecFinding::DuplicateLocation(TARGETING_UNIVERSE[0].code)));
        assert!(analysis.findings.contains(&SpecFinding::LocationsCoverUniverse));
        assert!(!analysis.is_contradictory());
    }

    #[test]
    fn catalog_marginals_mark_the_interval_advisory() {
        let world = test_world();
        let spec = TargetingSpec::builder()
            .worldwide()
            .interest(InterestId(1))
            .build()
            .expect("valid spec");
        let exact = analyzer(&world).analyze(&spec);
        assert!(exact.interval_sound);
        let approx = SpecAnalyzer::from_catalog(world.catalog(), world.population() as f64);
        assert!(!approx.marginals().is_exact());
        assert!(!approx.analyze(&spec).interval_sound);
        // A structural contradiction is sound whatever the marginals.
        let contradictory =
            approx.analyze_raw(&TargetingSpec::builder().worldwide().age_range(40, 20));
        assert!(contradictory.interval_sound);
        assert_eq!(contradictory.interval, AudienceInterval::EMPTY);
    }

    #[test]
    fn risk_ladder_follows_paper_thresholds() {
        let t = NpThresholds::paper();
        let big = 1e9;
        assert!(matches!(
            NanotargetingRisk::assess(2, big, &t),
            NanotargetingRisk::Low { interests: 2 }
        ));
        assert!(matches!(
            NanotargetingRisk::assess(5, big, &t),
            NanotargetingRisk::Possible { interests: 5 }
        ));
        assert!(matches!(
            NanotargetingRisk::assess(9, big, &t),
            NanotargetingRisk::Elevated { interests: 9 }
        ));
        assert!(matches!(
            NanotargetingRisk::assess(23, big, &t),
            NanotargetingRisk::Severe { interests: 23 }
        ));
        assert!(matches!(
            NanotargetingRisk::assess(2, 500.0, &t),
            NanotargetingRisk::Critical { interests: 2, .. }
        ));
        assert!(NanotargetingRisk::assess(9, big, &t).is_actionable());
        assert!(!NanotargetingRisk::assess(5, big, &t).is_actionable());
    }

    #[test]
    fn catalog_marginals_approximate_engine_marginals() {
        let world = test_world();
        let exact = InterestMarginals::from_engine(&world.reach_engine());
        let approx = InterestMarginals::from_catalog(world.catalog(), world.population() as f64);
        // Calibration keeps the catalog residual small; just sanity-check the
        // same order of magnitude on a few ids.
        for id in [0u32, 5, 11] {
            let e = exact.marginal(InterestId(id)).expect("in catalog");
            let a = approx.marginal(InterestId(id)).expect("in catalog");
            assert!(e > 0.0 && a > 0.0);
            assert!(a / e < 10.0 && e / a < 10.0, "id {id}: exact {e} vs catalog {a}");
        }
    }

    #[test]
    fn country_filter_narrows_the_interval() {
        let world = test_world();
        let an = analyzer(&world);
        let worldwide = TargetingSpec::builder().worldwide().build().expect("valid");
        let us_only =
            TargetingSpec::builder().location(TARGETING_UNIVERSE[0].code).build().expect("valid");
        let w = an.analyze(&worldwide).interval;
        let u = an.analyze(&us_only).interval;
        assert!(u.upper < w.upper);
        let api = crate::AdsManagerApi::new(&world, crate::ReportingEra::Post2018);
        assert!(u.contains(api.true_reach(&us_only)));
    }
}
