//! Offline workspace lint engine, token-level edition.
//!
//! A deliberately dependency-free analyzer (no `syn`, no proc-macro
//! machinery) built on a real Rust lexer ([`lexer`]): every file is
//! tokenized — nested block comments, raw strings (`r#"…"#`), byte strings,
//! multi-line string literals, char literals and lifetimes all handled — and
//! the rules walk the token stream. That kills both false-positive classes
//! of the old line-local substring scanner (`.unwrap()` inside a block
//! comment, `panic!(` inside a multi-line string) and its false negatives
//! (a comparison split across lines).
//!
//! The rules enforce the workspace's reproducibility and robustness
//! contracts (see DESIGN.md §8.2 for the authoritative table):
//!
//! * [`Rule::NoUnwrap`], [`Rule::NondeterministicRng`], [`Rule::FloatEq`],
//!   [`Rule::UnjustifiedAllow`], [`Rule::ThreadSpawn`],
//!   [`Rule::NoPrintInLibrary`] — carried over from the line engine,
//!   re-expressed as token patterns;
//! * [`Rule::EnvReadOutsideConfig`] — only `from_env`-style constructors
//!   may read `UOF_*` environment knobs (explicit configs stay immune to
//!   the CI sweeps);
//! * [`Rule::HashMapIteration`] — no hash-order iteration in
//!   simulation/cache code whose outputs must be bit-identical;
//! * [`Rule::WallclockInSim`] — no `Instant::now` / `SystemTime::now` in
//!   simulation crates (telemetry and server rate limiting are exempt by
//!   class);
//! * [`Rule::DynamicMetricName`] — metric/span name arguments in library
//!   code must be string literals, so the metric namespace stays greppable
//!   (`uof-telemetry`'s generic registry plumbing is exempt by class);
//! * [`Rule::BadWaiver`] — a `lint:allow` with an unknown rule name,
//!   missing reason or unterminated marker is itself an error, so a typo
//!   can never silently waive nothing.
//!
//! Findings can be waived inline with
//! `// lint:allow(<rule>) — reason` on the offending line or the line
//! directly above it; the reason is mandatory, and every waiver is
//! inventoried (`cargo run -p xtask -- lint --waivers`) against
//! [`WAIVER_BUDGET`]. Waived findings still appear in the JSON report with
//! `"waived":true`.
//!
//! The engine is exposed as a library so the workspace test-suite can gate
//! on it in-process (see `tests/lint_gate.rs` at the workspace root), and as
//! a CLI via `cargo run -p xtask -- lint [--format json] [--waivers]`. The
//! workspace walk fans file analysis out through the vendored rayon pool
//! and sorts findings by `(path, line, col)`, so the report — including the
//! JSON bytes — is identical at any `UOF_THREADS`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
pub mod lexer;
mod rules;
pub mod trace_report;

pub use rules::{analyze_source, waivers_in_source, FileClass, Rule, Violation, Waiver};

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rayon::prelude::*;

/// Ceiling on the number of active waiver comments in the workspace,
/// asserted by `tests/lint_gate.rs`. Raising it is a reviewed change to a
/// checked-in file, not a drive-by: each waiver is debt against the
/// reproducibility contract and the budget keeps the total visible.
/// The budget was raised from 24 when `dynamic-metric-name` landed: the
/// rule retroactively covers the per-opcode dispatch tables in `reach-api`
/// (four sites whose names come from a static table, waived by design).
pub const WAIVER_BUDGET: usize = 28;

/// Top-level directories `lint_workspace` walks, the single source of truth
/// `classify` is tested against (everything else at the root — `vendor/`,
/// `target/`, `scripts/` — is out of scope).
pub const WALK_DIRS: [&str; 5] = ["crates", "src", "tests", "examples", "benches"];

/// A finding attached to the file it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileViolation {
    /// Path relative to the lint root.
    pub path: PathBuf,
    /// The finding.
    pub violation: Violation,
}

impl fmt::Display for FileViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path.display(),
            self.violation.line,
            self.violation.col,
            self.violation.rule,
            self.violation.excerpt
        )
    }
}

/// A waiver attached to the file it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaiverSite {
    /// Path relative to the lint root.
    pub path: PathBuf,
    /// The parsed waiver.
    pub waiver: Waiver,
}

impl fmt::Display for WaiverSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rules: Vec<&str> = self.waiver.rules.iter().map(|r| r.name()).collect();
        write!(
            f,
            "{}:{} [{}] {}",
            self.path.display(),
            self.waiver.line,
            rules.join(", "),
            self.waiver.reason
        )
    }
}

/// The full result of linting a workspace: every finding (waived ones
/// flagged, not dropped) plus the file count, sorted `(path, line, col)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Number of files analyzed (classified in-scope).
    pub files: usize,
    /// All findings, sorted by `(path, line, col, rule)`.
    pub findings: Vec<FileViolation>,
}

impl Report {
    /// Findings not covered by a waiver — what fails the gate.
    pub fn active(&self) -> impl Iterator<Item = &FileViolation> {
        self.findings.iter().filter(|f| !f.violation.waived)
    }

    /// Serializes the report to the stable machine-readable JSON format:
    ///
    /// ```json
    /// {"findings":[{"path":…,"line":…,"col":…,"rule":…,"severity":…,
    ///   "excerpt":…,"waived":…},…],
    ///  "summary":{"files":…,"total":…,"active":…,"waived":…,
    ///   "per_rule":{"no-unwrap":{"active":…,"waived":…},…}}}
    /// ```
    ///
    /// Key order, member order and escaping are canonical (see [`json`]),
    /// and findings are pre-sorted — the same tree always produces the same
    /// bytes, at any thread count.
    pub fn to_json(&self) -> String {
        use json::Value;
        let findings: Vec<Value> = self
            .findings
            .iter()
            .map(|f| {
                Value::Obj(vec![
                    ("path".into(), Value::Str(f.path.display().to_string())),
                    ("line".into(), Value::int(f.violation.line)),
                    ("col".into(), Value::int(f.violation.col)),
                    ("rule".into(), Value::Str(f.violation.rule.name().into())),
                    ("severity".into(), Value::Str(f.violation.rule.severity().into())),
                    ("excerpt".into(), Value::Str(f.violation.excerpt.clone())),
                    ("waived".into(), Value::Bool(f.violation.waived)),
                ])
            })
            .collect();
        let mut per_rule = Vec::new();
        for rule in Rule::ALL {
            let active = self
                .findings
                .iter()
                .filter(|f| f.violation.rule == rule && !f.violation.waived)
                .count();
            let waived = self
                .findings
                .iter()
                .filter(|f| f.violation.rule == rule && f.violation.waived)
                .count();
            per_rule.push((
                rule.name().to_string(),
                Value::Obj(vec![
                    ("active".into(), Value::int(active)),
                    ("waived".into(), Value::int(waived)),
                ]),
            ));
        }
        let waived_total = self.findings.iter().filter(|f| f.violation.waived).count();
        let summary = Value::Obj(vec![
            ("files".into(), Value::int(self.files)),
            ("total".into(), Value::int(self.findings.len())),
            ("active".into(), Value::int(self.findings.len() - waived_total)),
            ("waived".into(), Value::int(waived_total)),
            ("per_rule".into(), Value::Obj(per_rule)),
        ]);
        Value::Obj(vec![("findings".into(), Value::Arr(findings)), ("summary".into(), summary)])
            .to_json_string()
    }
}

/// Lints one file's source under a [`FileClass`], returning only the
/// **active** (unwaived) findings. Use [`analyze_source`] for the full
/// list including waived findings.
pub fn lint_source(source: &str, class: FileClass) -> Vec<Violation> {
    analyze_source(source, class).into_iter().filter(|v| !v.waived).collect()
}

/// Classifies a workspace-relative path; `None` means the file is out of
/// scope (vendored, generated, or a non-Rust file).
pub fn classify(rel: &Path) -> Option<FileClass> {
    if rel.extension().and_then(|e| e.to_str()) != Some("rs") {
        return None;
    }
    let parts: Vec<&str> = rel.iter().filter_map(|p| p.to_str()).collect();
    if parts.first() == Some(&"vendor") || parts.first() == Some(&"target") {
        return None;
    }
    // tests/, benches/, examples/ anywhere in the path — whether a
    // root-level directory from WALK_DIRS or nested inside a crate: not
    // library code, but float-eq and allow hygiene still apply.
    let test_like = parts.iter().any(|p| matches!(*p, "tests" | "benches" | "examples"));
    // Binary targets may talk to a terminal; unwraps there abort one run,
    // not a simulation library call.
    let bin_like =
        parts.contains(&"bin") || rel.file_name().and_then(|f| f.to_str()) == Some("main.rs");
    let crate_name = if parts.first() == Some(&"crates") {
        parts.get(1).copied().unwrap_or("")
    } else {
        // Workspace-root src/, tests/, examples/ and benches/ belong to the
        // facade crate.
        "unique-on-facebook"
    };
    let simulation = crate_name.starts_with("fbsim")
        || matches!(crate_name, "uniqueness" | "nanotarget" | "unique-on-facebook");
    let library = !test_like && !bin_like;
    // reach-api's thread-per-connection server is I/O concurrency, not data
    // parallelism — it may spawn; everything else goes through the pool.
    let thread_policed = library && crate_name != "reach-api";
    // The xtask CLI and the bench reporting harness exist to talk to a
    // terminal; every other library crate must route diagnostics through
    // uof-telemetry rather than stdio.
    let print_policed = library && !matches!(crate_name, "xtask" | "bench");
    // The env contract covers everything that is not a test: library code
    // AND binaries must funnel UOF_* reads through from_env constructors.
    let env_policed = !test_like;
    // Bit-identity contract: simulation crates plus the reach cache (whose
    // warm/cold answers must match the engine exactly).
    let order_policed = library && (simulation || crate_name == "reach-cache");
    // Simulated results must not observe the wall clock; telemetry (whose
    // purpose is timing) and reach-api rate limiting are exempt by class.
    let wallclock_policed = library && simulation;
    // Metric/span names must be greppable string literals everywhere except
    // uof-telemetry itself (its registry plumbing is generic over names) and
    // the terminal-facing crates that are already stdio-exempt.
    let metric_name_policed = library && !matches!(crate_name, "uof-telemetry" | "xtask" | "bench");
    Some(FileClass {
        library,
        simulation,
        thread_policed,
        print_policed,
        env_policed,
        order_policed,
        wallclock_policed,
        metric_name_policed,
    })
}

/// Recursively collects `.rs` files under `dir`, skipping `vendor/`,
/// `target/` and hidden directories.
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || name == "vendor" || name == "target" {
                continue;
            }
            collect_rs(&path, root, out)?;
        } else if name.ends_with(".rs") {
            out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
    Ok(())
}

/// The sorted list of in-scope `.rs` files under `root` (relative paths,
/// [`WALK_DIRS`] only, unclassifiable files excluded).
///
/// # Errors
///
/// Propagates I/O errors from walking the tree.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in WALK_DIRS {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, root, &mut files)?;
        }
    }
    files.retain(|rel| classify(rel).is_some());
    files.sort();
    Ok(files)
}

/// Lints the whole workspace rooted at `root`, returning the full
/// [`Report`] (waived findings included).
///
/// Files are analyzed in parallel on the vendored rayon pool — honouring
/// `UOF_THREADS` and `rayon::with_thread_count` — and findings are sorted
/// by `(path, line, col, rule)`, so the report is bit-identical at any
/// thread count.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_workspace_report(root: &Path) -> io::Result<Report> {
    let files = workspace_files(root)?;
    let per_file: Vec<io::Result<Vec<FileViolation>>> = files
        .par_iter()
        .map(|rel| {
            let Some(class) = classify(rel) else { return Ok(Vec::new()) };
            let source = fs::read_to_string(root.join(rel))?;
            Ok(analyze_source(&source, class)
                .into_iter()
                .map(|violation| FileViolation { path: rel.clone(), violation })
                .collect())
        })
        .collect();
    let mut findings = Vec::new();
    for result in per_file {
        findings.extend(result?);
    }
    findings.sort_by(|a, b| {
        let ka = (&a.path, a.violation.line, a.violation.col, a.violation.rule.name());
        let kb = (&b.path, b.violation.line, b.violation.col, b.violation.rule.name());
        ka.cmp(&kb)
    });
    Ok(Report { files: files.len(), findings })
}

/// Lints the whole workspace rooted at `root`, returning only the active
/// (unwaived) findings — the gate's view.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<FileViolation>> {
    let report = lint_workspace_report(root)?;
    Ok(report.findings.into_iter().filter(|f| !f.violation.waived).collect())
}

/// Inventories every well-formed waiver in the workspace, sorted by
/// `(path, line)`. Malformed waivers are not listed — they surface as
/// [`Rule::BadWaiver`] findings in the lint report instead.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn waiver_inventory(root: &Path) -> io::Result<Vec<WaiverSite>> {
    let files = workspace_files(root)?;
    let per_file: Vec<io::Result<Vec<WaiverSite>>> = files
        .par_iter()
        .map(|rel| {
            let source = fs::read_to_string(root.join(rel))?;
            Ok(waivers_in_source(&source)
                .into_iter()
                .map(|waiver| WaiverSite { path: rel.clone(), waiver })
                .collect())
        })
        .collect();
    let mut waivers = Vec::new();
    for result in per_file {
        waivers.extend(result?);
    }
    waivers.sort_by(|a, b| (&a.path, a.waiver.line).cmp(&(&b.path, b.waiver.line)));
    Ok(waivers)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict(source: &str) -> Vec<Violation> {
        lint_source(source, FileClass::STRICT)
    }

    // -- carried-over rule semantics ---------------------------------------

    #[test]
    fn flags_unwrap_expect_panic_in_library_code() {
        let src = "fn f() {\n    let x = g().unwrap();\n    let y = h().expect(\"nope\");\n    panic!(\"boom\");\n}\n";
        let v = strict(src);
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|v| v.rule == Rule::NoUnwrap));
        assert_eq!(v[0].line, 2);
        assert!(v[0].col > 1, "column is recorded");
    }

    #[test]
    fn unwrap_adjacent_names_do_not_fire() {
        assert!(strict("fn f(x: Option<u8>) -> u8 { x.unwrap_or(3) }\n").is_empty());
        assert!(strict("fn f(x: Option<u8>) -> u8 { x.unwrap_or_default() }\n").is_empty());
        // `should_panic` contains `panic` as a substring but is one ident.
        assert!(strict("fn f() -> &'static str { \"should_panic(expected)\" }\n").is_empty());
    }

    #[test]
    fn test_modules_are_exempt_from_no_unwrap() {
        let src = "fn lib() -> u8 { 0 }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        foo().unwrap();\n    }\n}\n";
        assert!(strict(src).is_empty());
    }

    #[test]
    fn code_after_test_module_is_linted_again() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { foo().unwrap(); }\n}\nfn after() { bar().unwrap(); }\n";
        let v = strict(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn brace_less_cfg_test_item_does_not_exempt_later_code() {
        let src = "#[cfg(test)]\nmod tests;\nfn after() { bar().unwrap(); }\n";
        let v = strict(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
        let src = "#[cfg(test)] use helpers::fixture;\nfn after() { bar().unwrap(); }\n";
        let v = strict(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn non_library_files_may_unwrap() {
        let class = FileClass { library: false, ..FileClass::STRICT };
        assert!(lint_source("fn main() { run().unwrap(); }\n", class).is_empty());
    }

    #[test]
    fn flags_nondeterministic_rng_in_simulation_code() {
        let src = "fn f() {\n    let mut rng = rand::thread_rng();\n}\n";
        let v = strict(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NondeterministicRng);
        let class = FileClass { simulation: false, ..FileClass::STRICT };
        assert!(lint_source(src, class).is_empty());
        assert_eq!(strict("fn f() -> u8 { rand::random() }\n").len(), 1);
    }

    #[test]
    fn flags_thread_spawn_in_policed_library_code() {
        let src = "fn f() {\n    let h = std::thread::spawn(|| 1);\n}\n";
        let v = strict(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ThreadSpawn);
        assert_eq!(strict("fn f() {\n    thread::spawn(|| 1);\n}\n")[0].rule, Rule::ThreadSpawn);
        let class = FileClass { thread_policed: false, ..FileClass::STRICT };
        assert!(lint_source(src, class).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::spawn(|| 1); }\n}\n";
        assert!(strict(test_src).is_empty());
        let waived =
            "fn f() {\n    // lint:allow(thread-spawn) — watchdog timer, not data parallelism\n    std::thread::spawn(|| 1);\n}\n";
        assert!(strict(waived).is_empty());
    }

    #[test]
    fn flags_print_macros_in_library_code() {
        let src = "fn f() {\n    println!(\"a\");\n    eprintln!(\"b\");\n    print!(\"c\");\n    eprint!(\"d\");\n}\n";
        let v = strict(src);
        assert_eq!(v.len(), 4, "{v:?}");
        assert!(v.iter().all(|v| v.rule == Rule::NoPrintInLibrary));
        // One finding per macro: `eprintln!` is a single ident token, so it
        // can no longer double-match the `println!` pattern even in theory.
        assert_eq!(strict("fn f() { eprintln!(\"x\"); }\n").len(), 1);
        let class = FileClass { print_policed: false, ..FileClass::STRICT };
        assert!(lint_source(src, class).is_empty());
        let inert =
            "fn f() -> &'static str {\n    // the CLI used println!(...) here\n    \"println!(not code)\"\n}\n";
        assert!(strict(inert).is_empty());
    }

    #[test]
    fn flags_float_equality_but_not_integers_or_ranges() {
        assert_eq!(strict("fn f(x: f64) -> bool { x == 0.0 }\n").len(), 1);
        assert_eq!(strict("fn f(x: f64) -> bool { 1.5 != x }\n").len(), 1);
        assert_eq!(strict("fn f(x: f64) -> bool { x == 1e-3 }\n").len(), 1);
        assert_eq!(strict("fn f(x: f64) -> bool { x == -0.5 }\n").len(), 1);
        assert!(strict("fn f(x: u8) -> bool { x == 3 }\n").is_empty());
        assert!(strict("fn f(x: f64) -> bool { x <= 0.5 }\n").is_empty());
        assert!(strict("fn f(x: f64) -> bool { x >= 0.5 }\n").is_empty());
        assert!(strict("fn f(v: &[u8]) -> bool { v.len() == 2 }\n").is_empty());
        assert!(strict("fn f(w: &[(u16, f64)]) -> bool { w[0].0 != w[1].0 }\n").is_empty());
        assert!(strict("fn f(p: (u8, u8), q: (u8, u8)) -> bool { p.0 == q.0 }\n").is_empty());
    }

    #[test]
    fn float_comparison_split_across_lines_is_caught() {
        // The old line scanner could not see this; the token engine can.
        let src = "fn f(x: f64) -> bool {\n    x ==\n        0.25\n}\n";
        let v = strict(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::FloatEq);
        assert_eq!(v[0].line, 2, "reported at the operator");
    }

    #[test]
    fn flags_unjustified_allow_and_accepts_commented_ones() {
        let bare = "#[allow(dead_code)]\nfn f() {}\n";
        let v = strict(bare);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnjustifiedAllow);
        let same_line = "#[allow(dead_code)] // kept for the public API sketch\nfn f() {}\n";
        assert!(strict(same_line).is_empty());
        let line_above =
            "// The variants mirror the paper's table.\n#[allow(dead_code)]\nfn f() {}\n";
        assert!(strict(line_above).is_empty());
    }

    // -- decoys the line scanner used to misfire on ------------------------

    #[test]
    fn block_comment_decoys_do_not_fire() {
        let src = "/*\n * example: call .unwrap() then panic!(\"x\")\n * and compare x == 1.0 via thread::spawn\n */\nfn f() -> u8 { 0 }\n";
        assert!(strict(src).is_empty(), "{:?}", strict(src));
    }

    #[test]
    fn nested_block_comment_decoys_do_not_fire() {
        let src = "/* outer /* inner .unwrap() */ still comment panic!( */\nfn f() -> u8 { 0 }\n";
        assert!(strict(src).is_empty());
    }

    #[test]
    fn raw_string_decoys_do_not_fire() {
        let src =
            "fn f() -> &'static str {\n    r#\"calls .unwrap() and \" panic!(\"inside\") \"#\n}\n";
        assert!(strict(src).is_empty(), "{:?}", strict(src));
    }

    #[test]
    fn multi_line_string_decoys_do_not_fire() {
        // The middle lines look exactly like violating code to a per-line
        // scanner; the token engine sees one string literal.
        let src = "fn f() -> String {\n    let s = \"first\n        x.unwrap();\n        panic!(\\\"boom\\\");\n        y == 1.0\n    \".to_string();\n    s\n}\n";
        assert!(strict(src).is_empty(), "{:?}", strict(src));
    }

    #[test]
    fn char_literal_quote_does_not_open_a_string() {
        let src = "fn f(c: char) -> bool {\n    c == '\"' && g().is_some()\n}\nfn g() -> Option<u8> { x().unwrap() }\n";
        let v = strict(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn byte_string_decoys_do_not_fire() {
        let src = "fn f() -> &'static [u8] {\n    b\".unwrap() panic!(\"\n}\n";
        assert!(strict(src).is_empty());
    }

    // -- the three workspace-contract rules --------------------------------

    #[test]
    fn env_read_outside_from_env_fires() {
        let src = "pub fn master_seed() -> u64 {\n    std::env::var(\"UOF_SEED\").ok().and_then(|s| s.parse().ok()).unwrap_or(2021)\n}\n";
        let v = strict(src);
        assert!(v.iter().any(|v| v.rule == Rule::EnvReadOutsideConfig), "{v:?}");
    }

    #[test]
    fn env_read_inside_from_env_is_classified() {
        let src = "pub fn from_env() -> Config {\n    let on = std::env::var(\"UOF_CACHE\").is_ok();\n    Config { on }\n}\npub fn seed_from_env() -> u64 {\n    std::env::var(\"UOF_SEED\").map(|s| s.len() as u64).unwrap_or(0)\n}\n";
        assert!(!strict(src).iter().any(|v| v.rule == Rule::EnvReadOutsideConfig));
    }

    #[test]
    fn env_read_of_non_uof_literal_is_out_of_scope() {
        let src = "fn home() -> Option<String> {\n    std::env::var(\"HOME\").ok()\n}\n";
        assert!(!strict(src).iter().any(|v| v.rule == Rule::EnvReadOutsideConfig));
    }

    #[test]
    fn env_read_of_non_literal_name_is_conservative() {
        let src = "fn read(name: &str) -> Option<String> {\n    std::env::var(name).ok()\n}\n";
        let v = strict(src);
        assert!(v.iter().any(|v| v.rule == Rule::EnvReadOutsideConfig), "{v:?}");
    }

    #[test]
    fn env_macro_is_not_an_env_read() {
        let src = "fn root() -> &'static str {\n    env!(\"CARGO_MANIFEST_DIR\")\n}\n";
        assert!(!strict(src).iter().any(|v| v.rule == Rule::EnvReadOutsideConfig));
    }

    #[test]
    fn hashmap_iteration_fires_on_iter_and_for() {
        let src = "use std::collections::HashMap;\nfn f(map: HashMap<u8, u8>) -> u32 {\n    let mut sum = 0u32;\n    for (_, v) in &map {\n        sum += u32::from(*v);\n    }\n    sum + map.values().map(|v| u32::from(*v)).sum::<u32>()\n}\n";
        let v: Vec<_> =
            strict(src).into_iter().filter(|v| v.rule == Rule::HashMapIteration).collect();
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].line, 4);
        assert_eq!(v[1].line, 7);
    }

    #[test]
    fn hashmap_point_operations_are_legal() {
        let src = "use std::collections::HashMap;\nstruct S { map: HashMap<u8, u8> }\nimpl S {\n    fn get(&mut self, k: u8) -> Option<u8> {\n        self.map.get(&k).copied()\n    }\n    fn put(&mut self, k: u8) { self.map.insert(k, 0); self.map.remove(&k); }\n    fn size(&self) -> usize { self.map.len() }\n}\n";
        assert!(
            !strict(src).iter().any(|v| v.rule == Rule::HashMapIteration),
            "point lookups never observe order"
        );
    }

    #[test]
    fn hashset_and_self_field_iteration_fire() {
        let src = "use std::collections::HashSet;\nstruct S { seen: HashSet<u64> }\nimpl S {\n    fn all(&self) -> Vec<u64> {\n        let mut out = Vec::new();\n        for x in &self.seen {\n            out.push(*x);\n        }\n        out\n    }\n}\n";
        let v = strict(src);
        assert!(v.iter().any(|v| v.rule == Rule::HashMapIteration), "{v:?}");
    }

    #[test]
    fn btreemap_iteration_is_fine() {
        let src = "use std::collections::BTreeMap;\nfn f(map: BTreeMap<u8, u8>) -> u32 {\n    map.values().map(|v| u32::from(*v)).sum()\n}\n";
        assert!(strict(src).is_empty());
    }

    #[test]
    fn hashmap_iteration_in_tests_is_exempt_and_class_gated() {
        let test_src = "use std::collections::HashSet;\n#[cfg(test)]\nmod tests {\n    fn t() {\n        let seen: HashSet<u8> = HashSet::new();\n        for x in &seen {}\n    }\n}\n";
        assert!(strict(test_src).is_empty());
        let src = "use std::collections::HashMap;\nfn f(map: HashMap<u8,u8>) -> usize { map.keys().count() }\n";
        let class = FileClass { order_policed: false, ..FileClass::STRICT };
        assert!(lint_source(src, class).is_empty());
    }

    #[test]
    fn wallclock_in_sim_fires_and_is_class_gated() {
        let src = "fn f() -> std::time::Instant {\n    std::time::Instant::now()\n}\nfn g() -> std::time::SystemTime {\n    std::time::SystemTime::now()\n}\n";
        let v: Vec<_> =
            strict(src).into_iter().filter(|v| v.rule == Rule::WallclockInSim).collect();
        assert_eq!(v.len(), 2, "{v:?}");
        let class = FileClass { wallclock_policed: false, ..FileClass::STRICT };
        assert!(!lint_source(src, class).iter().any(|v| v.rule == Rule::WallclockInSim));
    }

    #[test]
    fn flags_dynamic_metric_names_but_not_literals() {
        // A variable (or any non-literal expression) as the name argument
        // fires for every metric-defining method and for `span`.
        let dynamic = "fn f(t: &Telemetry, name: &'static str) {\n    t.registry().counter(name).incr();\n    t.registry().gauge(name).set(1);\n    t.registry().histogram(name, &B).observe(2);\n    t.registry().latency_histogram(name).observe(3);\n    let _s = t.span(name).start();\n}\n";
        let v: Vec<_> =
            strict(dynamic).into_iter().filter(|v| v.rule == Rule::DynamicMetricName).collect();
        assert_eq!(v.len(), 5, "{v:?}");
        // String literals — of any flavour — are fine.
        let literal = "fn f(t: &Telemetry) {\n    t.registry().counter(\"reach.requests\").incr();\n    let _s = t.span(r#\"server.frame\"#).start();\n}\n";
        assert!(strict(literal).is_empty(), "{:?}", strict(literal));
        // Unrelated idents sharing a prefix, and `count` (which collides
        // with Iterator::count / the index's count), never fire.
        let inert = "fn f(v: &[u8], idx: &Index, w: &World) -> usize {\n    v.iter().count() + idx.count(w)\n}\n";
        assert!(strict(inert).is_empty(), "{:?}", strict(inert));
    }

    #[test]
    fn dynamic_metric_name_is_class_gated_waivable_and_test_exempt() {
        let src = "fn f(t: &Telemetry, name: &'static str) {\n    t.registry().counter(name).incr();\n}\n";
        let class = FileClass { metric_name_policed: false, ..FileClass::STRICT };
        assert!(lint_source(src, class).is_empty());
        let waived = "fn f(t: &Telemetry, name: &'static str) {\n    // lint:allow(dynamic-metric-name) — name comes from a static table\n    t.registry().counter(name).incr();\n}\n";
        assert!(strict(waived).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t(r: &Registry, n: &str) { r.counter(n).incr(); }\n}\n";
        assert!(strict(test_src).is_empty());
    }

    // -- waivers ------------------------------------------------------------

    #[test]
    fn waiver_suppresses_only_named_rule() {
        let src = "fn f() {\n    x().unwrap(); // lint:allow(no-unwrap) — startup invariant, cannot fail\n}\n";
        assert!(strict(src).is_empty());
        let wrong_rule = "fn f() {\n    x().unwrap(); // lint:allow(float-eq) — misdirected\n}\n";
        assert_eq!(strict(wrong_rule).len(), 1);
    }

    #[test]
    fn waiver_on_preceding_line_applies() {
        let src = "fn f() {\n    // lint:allow(no-unwrap) — the mutex cannot be poisoned here\n    x().unwrap();\n}\n";
        assert!(strict(src).is_empty());
    }

    #[test]
    fn waived_findings_are_reported_not_dropped() {
        let src = "fn f() {\n    x().unwrap(); // lint:allow(no-unwrap) — startup invariant, cannot fail\n}\n";
        let all = analyze_source(src, FileClass::STRICT);
        assert_eq!(all.len(), 1);
        assert!(all[0].waived);
        assert_eq!(all[0].rule, Rule::NoUnwrap);
    }

    #[test]
    fn waiver_without_reason_is_a_bad_waiver_finding() {
        let src = "fn f() {\n    x().unwrap(); // lint:allow(no-unwrap)\n}\n";
        let v = strict(src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|v| v.rule == Rule::NoUnwrap), "the unwrap still fires");
        assert!(v.iter().any(|v| v.rule == Rule::BadWaiver), "and the waiver is flagged");
        let dash_only = "fn f() {\n    x().unwrap(); // lint:allow(no-unwrap) —\n}\n";
        assert!(strict(dash_only).iter().any(|v| v.rule == Rule::BadWaiver));
    }

    #[test]
    fn unknown_rule_in_waiver_is_an_error_finding() {
        // The typo'd name waives nothing AND is loudly reported — the
        // failure mode this rule exists for.
        let src = "fn f() {\n    x().unwrap(); // lint:allow(no-unwarp) — reason text here\n}\n";
        let v = strict(src);
        assert!(v.iter().any(|v| v.rule == Rule::NoUnwrap), "{v:?}");
        let bad: Vec<_> = v.iter().filter(|v| v.rule == Rule::BadWaiver).collect();
        assert_eq!(bad.len(), 1, "{v:?}");
        assert!(bad[0].excerpt.contains("no-unwarp"), "{:?}", bad[0].excerpt);
    }

    #[test]
    fn unterminated_waiver_is_an_error_finding() {
        let src = "fn f() -> u8 {\n    // lint:allow(no-unwrap — missing close paren\n    0\n}\n";
        assert!(strict(src).iter().any(|v| v.rule == Rule::BadWaiver));
    }

    #[test]
    fn documentation_placeholder_waivers_are_ignored() {
        let src =
            "//! Waive with `lint:allow(<rule>) — reason` on the line above.\nfn f() -> u8 { 0 }\n";
        assert!(strict(src).is_empty());
    }

    #[test]
    fn bad_waiver_is_not_waivable() {
        let src = "fn f() -> u8 {\n    // lint:allow(bad-waiver, no-unwarp) — trying to waive the waiver checker\n    0\n}\n";
        assert!(strict(src).iter().any(|v| v.rule == Rule::BadWaiver));
    }

    #[test]
    fn waivers_in_source_inventories_reasons() {
        let src = "fn f() {\n    // lint:allow(no-unwrap, float-eq) — two rules, one reason\n    x().unwrap();\n}\n";
        let waivers = waivers_in_source(src);
        assert_eq!(waivers.len(), 1);
        assert_eq!(waivers[0].line, 2);
        assert_eq!(waivers[0].rules, vec![Rule::NoUnwrap, Rule::FloatEq]);
        assert_eq!(waivers[0].reason, "two rules, one reason");
    }

    // -- classification -----------------------------------------------------

    #[test]
    fn classify_maps_paths() {
        let lib = classify(Path::new("crates/uniqueness/src/np.rs")).unwrap();
        assert!(lib.library && lib.simulation && lib.thread_policed && lib.print_policed);
        assert!(lib.env_policed && lib.order_policed && lib.wallclock_policed);
        let bin = classify(Path::new("crates/bench/src/bin/fig_np.rs")).unwrap();
        assert!(!bin.library && !bin.thread_policed && !bin.print_policed);
        assert!(bin.env_policed, "binaries still funnel UOF_* reads through from_env");
        let test = classify(Path::new("tests/end_to_end.rs")).unwrap();
        assert!(!test.library && test.simulation && !test.thread_policed);
        assert!(!test.env_policed && !test.order_policed && !test.wallclock_policed);
        let xt = classify(Path::new("crates/xtask/src/lib.rs")).unwrap();
        assert!(xt.library && !xt.simulation && !xt.print_policed && !xt.wallclock_policed);
        let bench_lib = classify(Path::new("crates/bench/src/lib.rs")).unwrap();
        assert!(bench_lib.library && !bench_lib.print_policed && bench_lib.env_policed);
        assert!(!bench_lib.wallclock_policed, "bench timing is operational, not simulated");
        let telemetry = classify(Path::new("crates/uof-telemetry/src/lib.rs")).unwrap();
        assert!(telemetry.print_policed);
        assert!(!telemetry.wallclock_policed, "telemetry's purpose is wall-clock timing");
        assert!(!telemetry.metric_name_policed, "registry plumbing is generic over names");
        let api = classify(Path::new("crates/reach-api/src/server.rs")).unwrap();
        assert!(api.library && !api.thread_policed);
        assert!(!api.wallclock_policed, "rate limiting may read the clock");
        assert!(api.metric_name_policed, "instrumented code must use literal metric names");
        assert!(!bin.metric_name_policed && !xt.metric_name_policed);
        assert!(!bench_lib.metric_name_policed);
        let cache = classify(Path::new("crates/reach-cache/src/lru.rs")).unwrap();
        assert!(cache.order_policed, "cache answers must be order-deterministic");
        assert!(!cache.simulation && !cache.wallclock_policed);
        let pop = classify(Path::new("crates/fbsim-population/src/reach.rs")).unwrap();
        assert!(pop.thread_policed && pop.order_policed);
        // The marketplace is a simulation crate like the other fbsim-*
        // members: deterministic-RNG, iteration-order, thread, and
        // wall-clock rules all apply to its auction/pacing hot paths.
        let market = classify(Path::new("crates/fbsim-marketplace/src/pacing.rs")).unwrap();
        assert!(market.library && market.simulation);
        assert!(market.order_policed && market.wallclock_policed);
        assert!(market.thread_policed && market.print_policed && market.env_policed);
        assert!(classify(Path::new("vendor/rand/src/lib.rs")).is_none());
        assert!(classify(Path::new("README.md")).is_none());
    }

    #[test]
    fn classify_covers_every_walked_top_level_dir() {
        // Satellite contract: the classification of each top-level dir in
        // WALK_DIRS is pinned, so the walk list and the class table cannot
        // drift apart silently.
        for top in WALK_DIRS {
            let rel = PathBuf::from(top).join("probe.rs");
            let class = classify(&rel).unwrap_or_else(|| panic!("{top}/probe.rs must classify"));
            match top {
                "crates" | "src" => {
                    assert!(class.library, "{top}: library code");
                    assert!(class.env_policed, "{top}: env contract applies");
                }
                "tests" | "examples" | "benches" => {
                    assert!(!class.library, "{top}: not library code");
                    assert!(class.simulation, "{top}: facade crate, determinism still applies");
                    assert!(!class.thread_policed, "{top}: may spawn threads");
                    assert!(!class.print_policed, "{top}: may print");
                    assert!(!class.env_policed, "{top}: harness code may read the environment");
                    assert!(!class.order_policed && !class.wallclock_policed);
                }
                other => panic!("unexpected walk dir {other}"),
            }
        }
        // Nested test/bench/example dirs inside crates classify the same
        // way as the root-level ones.
        let nested = classify(Path::new("crates/bench/benches/reach_engine.rs")).unwrap();
        assert!(!nested.library && !nested.env_policed);
        let nested = classify(Path::new("crates/reach-api/tests/loopback.rs")).unwrap();
        assert!(!nested.library && !nested.env_policed);
    }

    #[test]
    fn rule_names_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(Rule::from_name("no-such-rule"), None);
    }

    // -- report / JSON -------------------------------------------------------

    #[test]
    fn report_json_round_trips_and_counts() {
        let src = "fn f() {\n    x().unwrap(); // lint:allow(no-unwrap) — startup invariant, cannot fail\n    let _gap = 0;\n    y().unwrap();\n}\n";
        let findings: Vec<FileViolation> = analyze_source(src, FileClass::STRICT)
            .into_iter()
            .map(|violation| FileViolation { path: PathBuf::from("src/demo.rs"), violation })
            .collect();
        let report = Report { files: 1, findings };
        let text = report.to_json();
        let value = json::parse(&text).expect("report JSON parses");
        assert_eq!(value.to_json_string(), text, "canonical bytes round-trip");
        let summary = value.get("summary").expect("summary present");
        assert_eq!(summary.get("total"), Some(&json::Value::Num("2".into())));
        assert_eq!(summary.get("active"), Some(&json::Value::Num("1".into())));
        assert_eq!(summary.get("waived"), Some(&json::Value::Num("1".into())));
        let per_rule = summary.get("per_rule").expect("per_rule present");
        let unwrap_counts = per_rule.get("no-unwrap").expect("no-unwrap entry");
        assert_eq!(unwrap_counts.get("active"), Some(&json::Value::Num("1".into())));
        assert_eq!(unwrap_counts.get("waived"), Some(&json::Value::Num("1".into())));
        // Every rule appears in per_rule, even with zero counts.
        for rule in Rule::ALL {
            assert!(per_rule.get(rule.name()).is_some(), "{} missing", rule.name());
        }
    }
}
