//! Offline workspace lint engine.
//!
//! A deliberately small, dependency-free line-level analyzer (`no syn`, no
//! proc-macro machinery) that enforces the workspace's reproducibility and
//! robustness rules:
//!
//! * [`Rule::NoUnwrap`] — no `unwrap()` / `expect(` / `panic!(` in
//!   library-crate non-test code; propagate `Result`s instead.
//! * [`Rule::NondeterministicRng`] — no `thread_rng()` / `from_entropy()` /
//!   `rand::random` in simulation crates: every sampled quantity must come
//!   from a seeded generator or runs are not reproducible.
//! * [`Rule::FloatEq`] — no `==` / `!=` against float literals; compare
//!   with an explicit tolerance.
//! * [`Rule::UnjustifiedAllow`] — no `#[allow(...)]` / `#![allow(...)]`
//!   without a justification comment on the same or the preceding line.
//! * [`Rule::ThreadSpawn`] — no direct `std::thread::spawn` in library
//!   crates: CPU parallelism must go through the vendored rayon pool so
//!   `UOF_THREADS` and the deterministic-reduction contract apply.
//!   `reach-api` (thread-per-connection I/O, not data parallelism) is
//!   exempt, as are tests, benches and binaries.
//! * [`Rule::NoPrintInLibrary`] — no `println!` / `eprintln!` (or their
//!   non-newline variants) in library crates: diagnostics belong in the
//!   `uof-telemetry` registry / trace writer, not on a shared process's
//!   stdio. Binaries, tests, the `xtask` CLI and the `bench` reporting
//!   harness are exempt.
//!
//! Findings can be waived inline with
//! `// lint:allow(<rule>) — reason` on the offending line or the line
//! directly above it; the reason is mandatory.  Test modules
//! (`#[cfg(test)]`), `tests/`, `benches/`, `examples/` and binary targets
//! (`src/bin/`, `src/main.rs`) are exempt from [`Rule::NoUnwrap`].
//!
//! The engine is exposed as a library so the workspace test-suite can gate
//! on it in-process (see `tests/lint_gate.rs` at the workspace root), and as
//! a CLI via `cargo run -p xtask -- lint`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The lint rules the engine knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `unwrap()` / `expect(` / `panic!(` in library non-test code.
    NoUnwrap,
    /// Nondeterministic RNG construction in simulation crates.
    NondeterministicRng,
    /// `==` / `!=` against floating-point values.
    FloatEq,
    /// `#[allow(...)]` without a justification comment.
    UnjustifiedAllow,
    /// Direct `std::thread::spawn` in library code that should use the
    /// vendored rayon pool instead.
    ThreadSpawn,
    /// `println!` / `eprintln!` / `print!` / `eprint!` in library code that
    /// should report through the telemetry layer instead of stdio.
    NoPrintInLibrary,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 6] = [
        Rule::NoUnwrap,
        Rule::NondeterministicRng,
        Rule::FloatEq,
        Rule::UnjustifiedAllow,
        Rule::ThreadSpawn,
        Rule::NoPrintInLibrary,
    ];

    /// The rule's waiver / report name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::NondeterministicRng => "nondeterministic-rng",
            Rule::FloatEq => "float-eq",
            Rule::UnjustifiedAllow => "unjustified-allow",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::NoPrintInLibrary => "no-print-in-library",
        }
    }

    /// Parses a waiver name back to a rule.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a file participates in linting, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Library (non-test, non-bin) code: [`Rule::NoUnwrap`] applies.
    pub library: bool,
    /// Simulation crate: [`Rule::NondeterministicRng`] applies.
    pub simulation: bool,
    /// Library code that must parallelise through the vendored rayon pool:
    /// [`Rule::ThreadSpawn`] applies.
    pub thread_policed: bool,
    /// Library code that must not write to stdio:
    /// [`Rule::NoPrintInLibrary`] applies.
    pub print_policed: bool,
}

impl FileClass {
    /// Class under which every rule fires — what the unit-test fixtures use.
    pub const STRICT: Self =
        Self { library: true, simulation: true, thread_policed: true, print_policed: true };
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated rule.
    pub rule: Rule,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: [{}] {}", self.line, self.rule, self.excerpt)
    }
}

/// A finding attached to the file it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileViolation {
    /// Path relative to the lint root.
    pub path: PathBuf,
    /// The finding.
    pub violation: Violation,
}

impl fmt::Display for FileViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.violation.line,
            self.violation.rule,
            self.violation.excerpt
        )
    }
}

/// Waivers parsed from one line: `// lint:allow(rule-a, rule-b) — reason`.
/// Returns `None` when no waiver marker is present, `Some(vec![])` when a
/// marker exists but is malformed (no closing paren or empty reason) — a
/// malformed waiver waives nothing.
fn parse_waivers(line: &str) -> Option<Vec<Rule>> {
    let marker = line.find("lint:allow(")?;
    let after = &line[marker + "lint:allow(".len()..];
    let close = match after.find(')') {
        Some(c) => c,
        None => return Some(Vec::new()),
    };
    let reason = after[close + 1..].trim_start_matches([' ', '\u{2014}', '-', ':']);
    if reason.trim().is_empty() {
        return Some(Vec::new());
    }
    Some(after[..close].split(',').filter_map(|name| Rule::from_name(name.trim())).collect())
}

/// Strips string-literal contents and trailing `//` comments so pattern
/// matching cannot fire inside either.  The waiver comment (if any) must be
/// parsed from the raw line *before* calling this.  Char/lifetime quotes and
/// raw strings are handled well enough for this workspace's code; the
/// approach is line-local by design.
fn scannable(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => {
                    in_str = false;
                    out.push('"');
                }
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push('"');
            }
            // A char literal like '"' or 'a': skip it wholesale so its
            // payload cannot open a bogus string.  Lifetimes ('a without a
            // closing quote) pass through unharmed.
            '\'' => {
                let mut look = chars.clone();
                let first = look.next();
                if first == Some('\\') {
                    look.next();
                }
                if look.peek() == Some(&'\'') {
                    if first == Some('\\') {
                        chars.next();
                    }
                    chars.next();
                    chars.next();
                    out.push_str("' '");
                } else {
                    out.push('\'');
                }
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

/// Whether a scannable line contains `==` or `!=` with a float literal on
/// either side of it (e.g. `x == 0.0`, `1.5!=y`).
fn has_float_comparison(code: &str) -> bool {
    let bytes = code.as_bytes();
    for i in 0..bytes.len().saturating_sub(1) {
        let op = match (bytes[i], bytes[i + 1]) {
            (b'=', b'=') | (b'!', b'=') => true,
            _ => false,
        };
        if !op {
            continue;
        }
        // `<=`, `>=`, `=>`, `===`-like runs: require a non-`=`/`<`/`>`/`!`
        // on the left and no `=` on the right.
        if i > 0 && matches!(bytes[i - 1], b'=' | b'<' | b'>' | b'!') {
            continue;
        }
        if bytes.get(i + 2) == Some(&b'=') {
            continue;
        }
        if is_float_literal_end(&code[..i]) || is_float_literal_start(&code[i + 2..]) {
            return true;
        }
    }
    false
}

/// Whether the text ends (modulo spaces) with a float literal like `0.` /
/// `0.0` / `1e-3` / `1.0f64`.
fn is_float_literal_end(text: &str) -> bool {
    let t = text.trim_end();
    let tail: String = t
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-' | '+'))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    // `pair.0` / `xs[1].0` are tuple-field accesses, not literals: a tail
    // starting with `.` counts only when nothing indexable precedes it.
    if tail.starts_with('.') {
        let preceding = t[..t.len() - tail.len()].chars().next_back();
        if preceding.is_some_and(|c| c == ']' || c == ')' || c.is_alphanumeric() || c == '_') {
            return false;
        }
    }
    looks_like_float(&tail)
}

/// Whether the text starts (modulo spaces) with a float literal.
fn is_float_literal_start(text: &str) -> bool {
    let t = text.trim_start();
    let head: String = t
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-' | '+'))
        .collect();
    looks_like_float(&head)
}

/// `0.0`, `1.`, `.5`, `1e-3`, `1_000.25f64`, `f64::EPSILON`-free check of a
/// single token-ish string.
fn looks_like_float(token: &str) -> bool {
    let token = token.trim_start_matches(['-', '+']);
    let numeric = token.trim_end_matches("f64").trim_end_matches("f32");
    if numeric.is_empty() || !numeric.starts_with(|c: char| c.is_ascii_digit() || c == '.') {
        return false;
    }
    let mut saw_digit = false;
    let mut saw_dot_or_exp = false;
    let mut chars = numeric.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '0'..='9' | '_' => saw_digit = true,
            '.' => {
                // A method call like `1.max(2)` is not a float literal; a
                // bare trailing dot (`1. == x`) is.
                if chars.peek().is_some_and(|n| n.is_ascii_alphabetic()) {
                    return false;
                }
                saw_dot_or_exp = true;
            }
            'e' | 'E' => {
                if chars.peek().is_some_and(|n| n.is_ascii_digit() || *n == '-' || *n == '+') {
                    saw_dot_or_exp = true;
                    if chars.peek().is_some_and(|n| *n == '-' || *n == '+') {
                        chars.next();
                    }
                } else {
                    return false;
                }
            }
            _ => return false,
        }
    }
    saw_digit && saw_dot_or_exp
}

/// Lints one file's source under a [`FileClass`].
///
/// The analysis is line-level: each line is stripped of strings/comments,
/// checked against the applicable rules, and findings are dropped when a
/// waiver for that rule appears on the same or the preceding line.
/// `#[cfg(test)]` regions are tracked by brace depth and exempted entirely.
pub fn lint_source(source: &str, class: FileClass) -> Vec<Violation> {
    let lines: Vec<&str> = source.lines().collect();
    let mut violations = Vec::new();
    // Depth of the `#[cfg(test)]` item's braces; `None` when outside.
    let mut test_region: Option<i64> = None;
    let mut pending_test_attr = false;

    for (idx, raw) in lines.iter().enumerate() {
        let code = scannable(raw);
        let trimmed = raw.trim();

        // --- test-region tracking -----------------------------------------
        if test_region.is_none() && code.contains("#[cfg(test)]") {
            pending_test_attr = true;
        }
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        let in_test = if let Some(depth) = test_region.as_mut() {
            *depth += opens - closes;
            let still_inside = *depth > 0;
            if !still_inside {
                test_region = None;
            }
            true
        } else if pending_test_attr && opens > 0 {
            pending_test_attr = false;
            let depth = opens - closes;
            if depth > 0 {
                test_region = Some(depth);
            }
            true
        } else if pending_test_attr {
            // Between the attribute and its item.  A brace-less item (an
            // out-of-line `mod tests;`, a `#[cfg(test)] use …;`) consumes
            // the attribute, so a later unrelated braced item is not
            // silently exempted; attribute or comment lines keep it
            // pending.
            if code.trim_end().ends_with(';') {
                pending_test_attr = false;
            }
            true
        } else {
            false
        };

        // --- waivers -------------------------------------------------------
        let mut waived: Vec<Rule> = parse_waivers(raw).unwrap_or_default();
        if idx > 0 {
            if let Some(prev) = parse_waivers(lines[idx - 1]) {
                waived.extend(prev);
            }
        }

        let mut push = |rule: Rule, waived: &[Rule]| {
            if !waived.contains(&rule) {
                violations.push(Violation {
                    rule,
                    line: idx + 1,
                    excerpt: trimmed.chars().take(120).collect(),
                });
            }
        };

        // --- rules ---------------------------------------------------------
        if class.library && !in_test {
            if code.contains(".unwrap()") || code.contains(".expect(") || code.contains("panic!(") {
                push(Rule::NoUnwrap, &waived);
            }
        }
        if class.simulation && !in_test {
            if code.contains("thread_rng()")
                || code.contains("from_entropy()")
                || code.contains("rand::random")
            {
                push(Rule::NondeterministicRng, &waived);
            }
        }
        if !in_test && has_float_comparison(&code) {
            push(Rule::FloatEq, &waived);
        }
        if class.thread_policed && !in_test && code.contains("thread::spawn") {
            push(Rule::ThreadSpawn, &waived);
        }
        if class.print_policed && !in_test {
            // `eprintln!(` contains `println!(` as a substring (and
            // `eprint!(` contains `print!(`), so one offending line matches
            // several patterns — the `||` chain still pushes once.
            if code.contains("println!(")
                || code.contains("eprintln!(")
                || code.contains("print!(")
                || code.contains("eprint!(")
            {
                push(Rule::NoPrintInLibrary, &waived);
            }
        }
        if code.contains("#[allow(") || code.contains("#![allow(") {
            // Justified when the raw line (or its predecessor) carries any
            // `//` comment text explaining it.
            let own_comment = raw.find("//").is_some_and(|c| raw[c + 2..].trim().len() > 2);
            let prev_comment = idx > 0 && {
                let p = lines[idx - 1].trim();
                p.starts_with("//") && p.trim_start_matches('/').trim().len() > 2
            };
            if !own_comment && !prev_comment {
                push(Rule::UnjustifiedAllow, &waived);
            }
        }
    }
    violations
}

/// Classifies a workspace-relative path; `None` means the file is out of
/// scope (vendored, generated, or a non-Rust file).
pub fn classify(rel: &Path) -> Option<FileClass> {
    if rel.extension().and_then(|e| e.to_str()) != Some("rs") {
        return None;
    }
    let parts: Vec<&str> = rel.iter().filter_map(|p| p.to_str()).collect();
    if parts.first() == Some(&"vendor") || parts.first() == Some(&"target") {
        return None;
    }
    // tests/, benches/, examples/ anywhere in the path: not library code,
    // but float-eq and allow hygiene still apply.
    let test_like = parts.iter().any(|p| matches!(*p, "tests" | "benches" | "examples"));
    // Binary targets may talk to a terminal; unwraps there abort one run,
    // not a simulation library call.
    let bin_like = parts.contains(&"bin")
        || rel.file_name().and_then(|f| f.to_str()) == Some("main.rs")
        || parts.first() == Some(&"scripts");
    let crate_name = if parts.first() == Some(&"crates") {
        parts.get(1).copied().unwrap_or("")
    } else {
        // Workspace-root src/ belongs to the facade crate.
        "unique-on-facebook"
    };
    let simulation = crate_name.starts_with("fbsim")
        || matches!(crate_name, "uniqueness" | "nanotarget" | "unique-on-facebook");
    let library = !test_like && !bin_like;
    // reach-api's thread-per-connection server is I/O concurrency, not data
    // parallelism — it may spawn; everything else goes through the pool.
    let thread_policed = library && crate_name != "reach-api";
    // The xtask CLI and the bench reporting harness exist to talk to a
    // terminal; every other library crate must route diagnostics through
    // uof-telemetry rather than stdio.
    let print_policed = library && !matches!(crate_name, "xtask" | "bench");
    Some(FileClass { library, simulation, thread_policed, print_policed })
}

/// Recursively collects `.rs` files under `dir`, skipping `vendor/`,
/// `target/` and hidden directories.
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || name == "vendor" || name == "target" {
                continue;
            }
            collect_rs(&path, root, out)?;
        } else if name.ends_with(".rs") {
            out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<FileViolation>> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples", "benches"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, root, &mut files)?;
        }
    }
    files.sort();
    let mut findings = Vec::new();
    for rel in files {
        let Some(class) = classify(&rel) else { continue };
        let source = fs::read_to_string(root.join(&rel))?;
        for violation in lint_source(&source, class) {
            findings.push(FileViolation { path: rel.clone(), violation });
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict(source: &str) -> Vec<Violation> {
        lint_source(source, FileClass::STRICT)
    }

    #[test]
    fn flags_unwrap_expect_panic_in_library_code() {
        let src = "fn f() {\n    let x = g().unwrap();\n    let y = h().expect(\"nope\");\n    panic!(\"boom\");\n}\n";
        let v = strict(src);
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|v| v.rule == Rule::NoUnwrap));
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn test_modules_are_exempt_from_no_unwrap() {
        let src = "fn lib() -> u8 { 0 }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        foo().unwrap();\n    }\n}\n";
        assert!(strict(src).is_empty());
    }

    #[test]
    fn code_after_test_module_is_linted_again() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { foo().unwrap(); }\n}\nfn after() { bar().unwrap(); }\n";
        let v = strict(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn brace_less_cfg_test_item_does_not_exempt_later_code() {
        // An out-of-line test module: the attribute applies to `mod tests;`
        // only, so the following production fn is linted.
        let src = "#[cfg(test)]\nmod tests;\nfn after() { bar().unwrap(); }\n";
        let v = strict(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
        // Same for a single-line gated import.
        let src = "#[cfg(test)] use helpers::fixture;\nfn after() { bar().unwrap(); }\n";
        let v = strict(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn non_library_files_may_unwrap() {
        let src = "fn main() { run().unwrap(); }\n";
        let v = lint_source(
            src,
            FileClass {
                library: false,
                simulation: true,
                thread_policed: false,
                print_policed: false,
            },
        );
        assert!(v.is_empty());
    }

    #[test]
    fn flags_nondeterministic_rng_in_simulation_code() {
        let src = "fn f() {\n    let mut rng = rand::thread_rng();\n}\n";
        let v = strict(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NondeterministicRng);
        let v = lint_source(
            src,
            FileClass {
                library: true,
                simulation: false,
                thread_policed: true,
                print_policed: true,
            },
        );
        assert!(v.is_empty());
    }

    #[test]
    fn flags_thread_spawn_in_policed_library_code() {
        let src = "fn f() {\n    let h = std::thread::spawn(|| 1);\n}\n";
        let v = strict(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ThreadSpawn);
        // Bare `thread::spawn` (with `use std::thread`) is caught too.
        let bare = "fn f() {\n    thread::spawn(|| 1);\n}\n";
        assert_eq!(strict(bare)[0].rule, Rule::ThreadSpawn);
        // Exempt where the class says spawning is fine (reach-api, bins).
        let v = lint_source(
            src,
            FileClass {
                library: true,
                simulation: false,
                thread_policed: false,
                print_policed: true,
            },
        );
        assert!(v.is_empty());
        // Test modules may spawn.
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::spawn(|| 1); }\n}\n";
        assert!(strict(test_src).is_empty());
        // Waivable with a reason.
        let waived =
            "fn f() {\n    // lint:allow(thread-spawn) — watchdog timer, not data parallelism\n    std::thread::spawn(|| 1);\n}\n";
        assert!(strict(waived).is_empty());
    }

    #[test]
    fn flags_print_macros_in_library_code() {
        let src = "fn f() {\n    println!(\"a\");\n    eprintln!(\"b\");\n    print!(\"c\");\n    eprint!(\"d\");\n}\n";
        let v = strict(src);
        assert_eq!(v.len(), 4, "{v:?}");
        assert!(v.iter().all(|v| v.rule == Rule::NoPrintInLibrary));
        assert_eq!(v[0].line, 2);
        // An eprintln! line is one finding, not two, even though its text
        // contains `println!(` as a substring.
        let one = strict("fn f() { eprintln!(\"x\"); }\n");
        assert_eq!(one.len(), 1);
        // Exempt where the class says stdio is fine (bins, xtask, bench).
        let v = lint_source(
            src,
            FileClass {
                library: true,
                simulation: false,
                thread_policed: true,
                print_policed: false,
            },
        );
        assert!(v.is_empty());
        // Test modules may print.
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t() { println!(\"debug\"); }\n}\n";
        assert!(strict(test_src).is_empty());
        // Strings and comments that mention the macros do not trigger.
        let inert =
            "fn f() -> &'static str {\n    // the CLI used println!(...) here\n    \"println!(not code)\"\n}\n";
        assert!(strict(inert).is_empty());
        // Waivable with a reason.
        let waived =
            "fn f() {\n    // lint:allow(no-print-in-library) — one-shot startup banner, not a hot path\n    eprintln!(\"up\");\n}\n";
        assert!(strict(waived).is_empty());
    }

    #[test]
    fn flags_float_equality_but_not_integers_or_ranges() {
        assert_eq!(strict("fn f(x: f64) -> bool { x == 0.0 }\n").len(), 1);
        assert_eq!(strict("fn f(x: f64) -> bool { 1.5 != x }\n").len(), 1);
        assert_eq!(strict("fn f(x: f64) -> bool { x == 1e-3 }\n").len(), 1);
        assert!(strict("fn f(x: u8) -> bool { x == 3 }\n").is_empty());
        assert!(strict("fn f(x: f64) -> bool { x <= 0.5 }\n").is_empty());
        assert!(strict("fn f(x: f64) -> bool { x >= 0.5 }\n").is_empty());
        assert!(strict("fn f(v: &[u8]) -> bool { v.len() == 2 }\n").is_empty());
        // Tuple-field accesses are not float literals.
        assert!(strict("fn f(w: &[(u16, f64)]) -> bool { w[0].0 != w[1].0 }\n").is_empty());
        assert!(strict("fn f(p: (u8, u8), q: (u8, u8)) -> bool { p.0 == q.0 }\n").is_empty());
    }

    #[test]
    fn flags_unjustified_allow_and_accepts_commented_ones() {
        let bare = "#[allow(dead_code)]\nfn f() {}\n";
        let v = strict(bare);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnjustifiedAllow);
        let same_line = "#[allow(dead_code)] // kept for the public API sketch\nfn f() {}\n";
        assert!(strict(same_line).is_empty());
        let line_above =
            "// The variants mirror the paper's table.\n#[allow(dead_code)]\nfn f() {}\n";
        assert!(strict(line_above).is_empty());
    }

    #[test]
    fn waiver_suppresses_only_named_rule() {
        let src = "fn f() {\n    x().unwrap(); // lint:allow(no-unwrap) — startup invariant, cannot fail\n}\n";
        assert!(strict(src).is_empty());
        let wrong_rule = "fn f() {\n    x().unwrap(); // lint:allow(float-eq) — misdirected\n}\n";
        assert_eq!(strict(wrong_rule).len(), 1);
    }

    #[test]
    fn waiver_on_preceding_line_applies() {
        let src = "fn f() {\n    // lint:allow(no-unwrap) — the mutex cannot be poisoned here\n    x().unwrap();\n}\n";
        assert!(strict(src).is_empty());
    }

    #[test]
    fn waiver_without_reason_is_ignored() {
        let src = "fn f() {\n    x().unwrap(); // lint:allow(no-unwrap)\n}\n";
        assert_eq!(strict(src).len(), 1);
        let dash_only = "fn f() {\n    x().unwrap(); // lint:allow(no-unwrap) —\n}\n";
        assert_eq!(strict(dash_only).len(), 1);
    }

    #[test]
    fn strings_and_comments_do_not_trigger() {
        let src = "fn f() -> &'static str {\n    // the old code called panic!(...) here\n    \"call .unwrap() and panic!(now)\"\n}\n";
        assert!(strict(src).is_empty());
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        let src = "fn f(c: char) -> bool {\n    c == '\"' && g().is_some()\n}\nfn g() -> Option<u8> { x().unwrap() }\n";
        let v = strict(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn classify_maps_paths() {
        let lib = classify(Path::new("crates/uniqueness/src/np.rs")).unwrap();
        assert!(lib.library && lib.simulation && lib.thread_policed && lib.print_policed);
        let bin = classify(Path::new("crates/bench/src/bin/fig_np.rs")).unwrap();
        assert!(!bin.library && !bin.thread_policed && !bin.print_policed);
        let test = classify(Path::new("tests/end_to_end.rs")).unwrap();
        assert!(!test.library && test.simulation && !test.thread_policed);
        let xt = classify(Path::new("crates/xtask/src/lib.rs")).unwrap();
        assert!(xt.library && !xt.simulation);
        // The xtask CLI and the bench progress reporter may print; other
        // library code must not.
        assert!(!xt.print_policed);
        let bench_lib = classify(Path::new("crates/bench/src/lib.rs")).unwrap();
        assert!(bench_lib.library && !bench_lib.print_policed);
        let telemetry = classify(Path::new("crates/uof-telemetry/src/lib.rs")).unwrap();
        assert!(telemetry.print_policed);
        // reach-api may spawn (thread-per-connection server), everyone else
        // must go through the vendored pool.
        let api = classify(Path::new("crates/reach-api/src/server.rs")).unwrap();
        assert!(api.library && !api.thread_policed);
        let pop = classify(Path::new("crates/fbsim-population/src/reach.rs")).unwrap();
        assert!(pop.thread_policed);
        assert!(classify(Path::new("vendor/rand/src/lib.rs")).is_none());
        assert!(classify(Path::new("README.md")).is_none());
    }

    #[test]
    fn rule_names_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(Rule::from_name("no-such-rule"), None);
    }
}
