//! Minimal, dependency-free JSON: a canonical emitter and a strict parser.
//!
//! The lint CLI's `--format json` output is a **stable machine-readable
//! contract** (see DESIGN.md §8.2): object keys are emitted in fixed order,
//! without whitespace, with a canonical escape set — so the same findings
//! always serialize to the same bytes, and `scripts/check.sh` can assert
//! `parse(emit(x)) == x` *and* `emit(parse(text)) == text` byte-for-byte.
//!
//! Numbers are restricted to integers (every numeric field in the
//! diagnostics format is a line, column or count); the parser keeps the raw
//! digit string so re-emission is exact.

use std::fmt::Write as _;

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw text for exact round-tripping.
    Num(String),
    /// A string (decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, members in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Serializes canonically: no whitespace, members in stored order,
    /// minimal escapes (`\"`, `\\`, `\n`, `\r`, `\t`, `\u00XX` for other
    /// control characters; everything else — including non-ASCII — raw).
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(raw) => out.push_str(raw),
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Convenience constructor for an integer.
    pub fn int(n: usize) -> Value {
        Value::Num(n.to_string())
    }

    /// Looks up a member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// A human-readable description with the byte offset of the problem.
pub fn parse(text: &str) -> Result<Value, String> {
    parse_with(text, false)
}

/// Parses a JSON document, additionally accepting fractional and exponent
/// number forms (`1.5`, `2e9`). Trace fields may carry `f64` values, so the
/// `trace-report` reader cannot use the strict integer-only [`parse`]; the
/// raw number text is still preserved verbatim for exact re-emission.
///
/// # Errors
///
/// A human-readable description with the byte offset of the problem.
pub fn parse_lenient(text: &str) -> Result<Value, String> {
    parse_with(text, true)
}

fn parse_with(text: &str, lenient_numbers: bool) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0, lenient_numbers };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    lenient_numbers: bool,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one slice for UTF-8 safety.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or(format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogates are not emitted by our writer;
                            // reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or(format!("surrogate \\u escape at byte {}", self.pos))?;
                            out.push(c);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start || (self.pos == start + 1 && self.bytes[start] == b'-') {
            return Err(format!("invalid number at byte {start}"));
        }
        // The diagnostics format is integer-only; reject fractions so a
        // malformed document cannot silently round-trip differently. The
        // lenient mode (trace input) consumes the full JSON number grammar.
        if self.lenient_numbers {
            if self.peek() == Some(b'.') {
                self.pos += 1;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                self.pos += 1;
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        } else if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(format!("non-integer number at byte {start}"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF-8 number".to_string())?;
        Ok(Value::Num(raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_parse_round_trip() {
        let value = Value::Obj(vec![
            ("a".into(), Value::int(3)),
            ("b".into(), Value::Str("x\"y\\z\n—".into())),
            ("c".into(), Value::Arr(vec![Value::Bool(true), Value::Null])),
        ]);
        let text = value.to_json_string();
        let back = parse(&text).expect("canonical output parses");
        assert_eq!(back, value);
        assert_eq!(back.to_json_string(), text, "byte-identical re-emission");
    }

    #[test]
    fn parses_whitespace_and_preserves_member_order() {
        let text = " { \"z\" : 1 , \"a\" : [ 2 , 3 ] } ";
        let value = parse(text).expect("parses");
        assert_eq!(
            value,
            Value::Obj(vec![
                ("z".into(), Value::int(1)),
                ("a".into(), Value::Arr(vec![Value::int(2), Value::int(3)])),
            ])
        );
        assert_eq!(value.to_json_string(), "{\"z\":1,\"a\":[2,3]}");
    }

    #[test]
    fn control_chars_escape_canonically() {
        let value = Value::Str("\u{1}".into());
        assert_eq!(value.to_json_string(), "\"\\u0001\"");
        assert_eq!(parse("\"\\u0001\"").expect("parses"), value);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1.5").is_err(), "diagnostics are integer-only");
        assert!(parse("{}extra").is_err());
        assert!(parse("\"\\q\"").is_err());
    }

    #[test]
    fn lenient_parse_accepts_floats_and_preserves_raw_text() {
        let value = parse_lenient("{\"x\":1.5,\"y\":2e9,\"z\":-3.25e-2,\"n\":7}").expect("parses");
        assert_eq!(value.get("x"), Some(&Value::Num("1.5".into())));
        assert_eq!(value.get("y"), Some(&Value::Num("2e9".into())));
        assert_eq!(value.get("z"), Some(&Value::Num("-3.25e-2".into())));
        assert_eq!(value.get("n"), Some(&Value::Num("7".into())));
        // Lenient mode still rejects structural garbage.
        assert!(parse_lenient("[1,]").is_err());
        assert!(parse_lenient("{}extra").is_err());
    }

    #[test]
    fn get_looks_up_members() {
        let value = parse("{\"summary\":{\"files\":7}}").expect("parses");
        let files = value.get("summary").and_then(|s| s.get("files"));
        assert_eq!(files, Some(&Value::Num("7".into())));
        assert_eq!(value.get("missing"), None);
    }
}
