//! Workspace task runner.
//!
//! ```text
//! cargo run -p xtask -- lint [--format text|json] [--waivers] [ROOT]
//! cargo run -p xtask -- check-json <FILE>
//! cargo run -p xtask -- trace-report <FILE> [--format text|json]
//!                                    [--min-complete N] [--exemplars K]
//! ```
//!
//! `lint` walks the workspace (or `ROOT`) and reports findings; exit status
//! is nonzero if any **active** (unwaived) finding exists, or — with
//! `--waivers` — if the waiver count exceeds `xtask::WAIVER_BUDGET`.
//! `--format json` emits the stable machine-readable report documented in
//! DESIGN.md §8.2. `check-json` re-parses a JSON report and verifies it
//! re-emits byte-identically (the round-trip check `scripts/check.sh` runs).
//! `trace-report` analyzes a JSONL span trace (DESIGN.md §15): tree
//! reconstruction, per-span percentiles, per-hop latency decomposition,
//! fan-out straggler attribution and slowest-trace exemplars; with
//! `--min-complete N` the exit status is nonzero unless at least `N`
//! complete traces were reconstructed (how `scripts/check.sh` asserts the
//! traced smoke sweep actually produced joined-up traces).

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask/ -> workspace root is two levels up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(|p| p.parent()).map(PathBuf::from).unwrap_or(manifest)
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p xtask -- lint [--format text|json] [--waivers] [ROOT]");
    eprintln!("       cargo run -p xtask -- check-json <FILE>");
    eprintln!(
        "       cargo run -p xtask -- trace-report <FILE> [--format text|json] \
         [--min-complete N] [--exemplars K]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("check-json") => check_json(&args[1..]),
        Some("trace-report") => trace_report(&args[1..]),
        _ => usage(),
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut format = "text";
    let mut waivers_mode = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some(f @ ("text" | "json")) => format = if f == "json" { "json" } else { "text" },
                _ => return usage(),
            },
            "--waivers" => waivers_mode = true,
            _ if arg.starts_with('-') => return usage(),
            _ => {
                if root.replace(PathBuf::from(arg)).is_some() {
                    return usage();
                }
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    if !root.is_dir() {
        eprintln!("lint: root {} is not a directory", root.display());
        return ExitCode::from(2);
    }

    if waivers_mode {
        return waivers(&root, format);
    }

    let report = match xtask::lint_workspace_report(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("lint: cannot walk {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    let active = report.active().count();
    if format == "json" {
        println!("{}", report.to_json());
    } else {
        for finding in &report.findings {
            let tag = if finding.violation.waived { " (waived)" } else { "" };
            println!("{finding}{tag}");
        }
        let waived = report.findings.len() - active;
        println!(
            "lint: checked {} files — {} active finding(s), {} waived",
            report.files, active, waived
        );
        if active > 0 {
            eprintln!("lint: waive with `// lint:allow(<rule>) — reason` where justified");
        }
    }
    if active == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn waivers(root: &std::path::Path, format: &str) -> ExitCode {
    let inventory = match xtask::waiver_inventory(root) {
        Ok(inventory) => inventory,
        Err(err) => {
            eprintln!("lint --waivers: cannot walk {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    if format == "json" {
        use xtask::json::Value;
        let sites: Vec<Value> = inventory
            .iter()
            .map(|site| {
                Value::Obj(vec![
                    ("path".into(), Value::Str(site.path.display().to_string())),
                    ("line".into(), Value::int(site.waiver.line)),
                    (
                        "rules".into(),
                        Value::Arr(
                            site.waiver.rules.iter().map(|r| Value::Str(r.name().into())).collect(),
                        ),
                    ),
                    ("reason".into(), Value::Str(site.waiver.reason.clone())),
                ])
            })
            .collect();
        let doc = Value::Obj(vec![
            ("waivers".into(), Value::Arr(sites)),
            ("count".into(), Value::int(inventory.len())),
            ("budget".into(), Value::int(xtask::WAIVER_BUDGET)),
        ]);
        println!("{}", doc.to_json_string());
    } else {
        for site in &inventory {
            println!("{site}");
        }
        println!("lint: {} waiver(s), budget {}", inventory.len(), xtask::WAIVER_BUDGET);
    }
    if inventory.len() <= xtask::WAIVER_BUDGET {
        ExitCode::SUCCESS
    } else {
        eprintln!("lint: waiver budget exceeded: {} > {}", inventory.len(), xtask::WAIVER_BUDGET);
        ExitCode::FAILURE
    }
}

fn trace_report(args: &[String]) -> ExitCode {
    let mut format = "text";
    let mut min_complete = 0usize;
    let mut exemplars = 3usize;
    let mut file: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some(f @ ("text" | "json")) => format = if f == "json" { "json" } else { "text" },
                _ => return usage(),
            },
            "--min-complete" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => min_complete = n,
                None => return usage(),
            },
            "--exemplars" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => exemplars = n,
                None => return usage(),
            },
            _ if arg.starts_with('-') => return usage(),
            _ => {
                if file.replace(PathBuf::from(arg)).is_some() {
                    return usage();
                }
            }
        }
    }
    let Some(file) = file else { return usage() };
    let text = match std::fs::read_to_string(&file) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("trace-report: {}: {err}", file.display());
            return ExitCode::from(2);
        }
    };
    let spans = match xtask::trace_report::parse_trace(&text) {
        Ok(spans) => spans,
        Err(err) => {
            eprintln!("trace-report: {}: {err}", file.display());
            return ExitCode::FAILURE;
        }
    };
    let analysis = xtask::trace_report::analyze(spans);
    if format == "json" {
        println!("{}", xtask::trace_report::report_json(&analysis, exemplars));
    } else {
        print!("{}", xtask::trace_report::report_text(&analysis, exemplars));
    }
    let complete = analysis.complete_traces();
    if complete < min_complete {
        eprintln!("trace-report: {complete} complete trace(s) < required {min_complete}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn check_json(args: &[String]) -> ExitCode {
    let [path] = args else { return usage() };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("check-json: {path}: {err}");
            return ExitCode::from(2);
        }
    };
    let trimmed = text.trim_end_matches('\n');
    let value = match xtask::json::parse(trimmed) {
        Ok(value) => value,
        Err(err) => {
            eprintln!("check-json: {path}: parse error: {err}");
            return ExitCode::FAILURE;
        }
    };
    if value.to_json_string() != trimmed {
        eprintln!("check-json: {path}: re-emission is not byte-identical");
        return ExitCode::FAILURE;
    }
    println!("check-json: {path}: ok");
    ExitCode::SUCCESS
}
