//! Workspace automation CLI: `cargo run -p xtask -- lint [ROOT]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask/ -> workspace root is two levels up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(|p| p.parent()).map(PathBuf::from).unwrap_or(manifest)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let root = args.next().map(PathBuf::from).unwrap_or_else(workspace_root);
            if !root.is_dir() {
                eprintln!("lint: root {} is not a directory", root.display());
                return ExitCode::FAILURE;
            }
            match xtask::lint_workspace(&root) {
                Ok(findings) if findings.is_empty() => {
                    println!("lint: clean ({})", root.display());
                    ExitCode::SUCCESS
                }
                Ok(findings) => {
                    for finding in &findings {
                        eprintln!("{finding}");
                    }
                    eprintln!(
                        "lint: {} violation(s); waive with `// lint:allow(<rule>) — reason`",
                        findings.len()
                    );
                    ExitCode::FAILURE
                }
                Err(err) => {
                    eprintln!("lint: cannot walk {}: {err}", root.display());
                    ExitCode::FAILURE
                }
            }
        }
        Some(other) => {
            eprintln!("xtask: unknown task `{other}` (available: lint)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint [ROOT]");
            ExitCode::FAILURE
        }
    }
}
