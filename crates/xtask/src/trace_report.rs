//! Offline trace analysis for the JSONL span sink (`uof-telemetry`).
//!
//! `cargo run -p xtask -- trace-report <FILE>` reads a trace file, rebuilds
//! the parent→child span trees from the `trace_id` / `span_id` /
//! `parent_span_id` links, and reports:
//!
//! * per-span-name duration percentiles (p50/p95/p99, nearest-rank) and
//!   counts;
//! * per-hop latency decomposition for `client.request` spans that carry a
//!   server-timing echo — wire time, server queue, engine time, and cache /
//!   handler overhead, each as a percentile distribution;
//! * frame-queue distributions per frame span (`server.frame`,
//!   `router.frame`), from their `queue_ns` field;
//! * critical-path attribution for fan-outs: when one parent has shard-
//!   labelled `client.request` children, which shard straggled and by how
//!   much (the gap to the second-slowest shard — the time a perfect
//!   rebalance of that one request would have saved);
//! * slowest complete-trace exemplars.
//!
//! All output is deterministic: spans are ordered by `(start_ns, seq)`,
//! ties broken by explicit keys, and the JSON form is canonical ([`json`])
//! so the same trace file always produces the same bytes. The input parser
//! is the *lenient* JSON reader — span fields may be `f64` — but every
//! reported quantity is an integer nanosecond count or a plain count, so
//! the report itself round-trips through the strict parser.

use std::collections::BTreeMap;

use crate::json::{self, Value};

/// One span record parsed from a trace line.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRec {
    /// Span name.
    pub span: String,
    /// Sink emission sequence number.
    pub seq: u64,
    /// Trace the span belongs to (0 = no identity allocated).
    pub trace_id: u64,
    /// The span's own id (0 = no identity allocated).
    pub span_id: u64,
    /// Parent span id (0 = root).
    pub parent_span_id: u64,
    /// Start, ns since the process's telemetry origin.
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
    /// Structured fields (key → raw JSON value), in emission order.
    pub fields: Vec<(String, Value)>,
}

impl SpanRec {
    /// Looks up a field as a `u64` (integer-valued fields only).
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        self.fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        })
    }

    /// Looks up a boolean field.
    pub fn field_bool(&self, key: &str) -> Option<bool> {
        self.fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
            Value::Bool(b) => Some(*b),
            _ => None,
        })
    }
}

/// Parses a JSONL trace document into span records.
///
/// Blank lines are skipped. A torn final line (the tracer is best-effort
/// and a process may die mid-write) is tolerated **only** at end-of-input;
/// a malformed line elsewhere is an error carrying the 1-based line number.
///
/// # Errors
///
/// A description of the first malformed interior line.
pub fn parse_trace(text: &str) -> Result<Vec<SpanRec>, String> {
    let lines: Vec<&str> = text.lines().collect();
    let mut spans = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Ok(rec) => spans.push(rec),
            Err(err) if idx + 1 == lines.len() => {
                // Torn tail write: ignore, the rest of the file stands.
                let _ = err;
            }
            Err(err) => return Err(format!("line {}: {err}", idx + 1)),
        }
    }
    Ok(spans)
}

fn parse_line(line: &str) -> Result<SpanRec, String> {
    let value = json::parse_lenient(line)?;
    let span = match value.get("span") {
        Some(Value::Str(s)) => s.clone(),
        _ => return Err("missing span name".into()),
    };
    let num = |key: &str| -> Result<u64, String> {
        match value.get(key) {
            Some(Value::Num(raw)) => raw.parse().map_err(|_| format!("non-u64 `{key}`: {raw}")),
            _ => Err(format!("missing `{key}`")),
        }
    };
    let fields = match value.get("fields") {
        Some(Value::Arr(items)) => items
            .iter()
            .filter_map(|item| match item {
                Value::Obj(members) => members.first().cloned(),
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    };
    Ok(SpanRec {
        span,
        seq: num("seq")?,
        trace_id: num("trace_id")?,
        span_id: num("span_id")?,
        parent_span_id: num("parent_span_id")?,
        start_ns: num("start_ns")?,
        dur_ns: num("dur_ns")?,
        fields,
    })
}

/// One reconstructed trace tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceTree {
    /// The shared trace id.
    pub trace_id: u64,
    /// Indexes into the analysis's span vector, ordered `(start_ns, seq)`.
    pub spans: Vec<usize>,
    /// Index of the root span (`parent_span_id == 0`), if exactly one.
    pub root: Option<usize>,
    /// Spans whose non-zero parent id is absent from this trace.
    pub orphans: usize,
    /// Complete: one root, every parent link resolves, and at least one
    /// child — the wire actually carried the context to another hop.
    pub complete: bool,
}

/// A fan-out observed in a trace: one parent with shard-labelled
/// `client.request` children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fanout {
    /// Trace it occurred in.
    pub trace_id: u64,
    /// The parent span's name (e.g. `reach.request.scalar`).
    pub parent_span: String,
    /// Number of shard children.
    pub width: usize,
    /// Shard index of the slowest child.
    pub straggler_shard: u64,
    /// The straggler's duration.
    pub straggler_dur_ns: u64,
    /// Gap to the second-slowest shard — the critical-path excess the
    /// straggler alone contributed.
    pub excess_ns: u64,
}

/// The full analysis of a parsed trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// All parsed spans, ordered `(trace_id, start_ns, seq)`.
    pub spans: Vec<SpanRec>,
    /// Spans with `trace_id == 0` (no identity was allocated — tracing was
    /// enabled mid-run or the span predates context adoption).
    pub identityless: usize,
    /// Reconstructed trees, ordered by trace id.
    pub traces: Vec<TraceTree>,
    /// Fan-outs, ordered `(trace_id, parent span id)`.
    pub fanouts: Vec<Fanout>,
}

impl Analysis {
    /// Number of complete traces.
    pub fn complete_traces(&self) -> usize {
        self.traces.iter().filter(|t| t.complete).count()
    }
}

/// Reconstructs trace trees and fan-outs from parsed spans.
pub fn analyze(mut spans: Vec<SpanRec>) -> Analysis {
    spans.sort_by(|a, b| (a.trace_id, a.start_ns, a.seq).cmp(&(b.trace_id, b.start_ns, b.seq)));
    let identityless = spans.iter().filter(|s| s.trace_id == 0).count();

    let mut by_trace: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, span) in spans.iter().enumerate() {
        if span.trace_id != 0 {
            by_trace.entry(span.trace_id).or_default().push(i);
        }
    }

    let mut traces = Vec::new();
    let mut fanouts = Vec::new();
    for (trace_id, members) in by_trace {
        let ids: BTreeMap<u64, usize> = members.iter().map(|&i| (spans[i].span_id, i)).collect();
        let roots: Vec<usize> =
            members.iter().copied().filter(|&i| spans[i].parent_span_id == 0).collect();
        let orphans = members
            .iter()
            .filter(|&&i| {
                spans[i].parent_span_id != 0 && !ids.contains_key(&spans[i].parent_span_id)
            })
            .count();
        let root = if roots.len() == 1 { Some(roots[0]) } else { None };
        let complete = root.is_some() && orphans == 0 && members.len() > 1;

        // Fan-outs: group shard-labelled client.request children by parent.
        let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for &i in &members {
            let s = &spans[i];
            if s.span == "client.request" && s.field_u64("shard").is_some() {
                children.entry(s.parent_span_id).or_default().push(i);
            }
        }
        for (parent_id, kids) in children {
            if kids.len() < 2 {
                continue;
            }
            // Slowest first; ties broken by shard index so attribution is
            // stable even for identical durations.
            let mut by_dur: Vec<(u64, u64)> = kids
                .iter()
                .map(|&i| (spans[i].dur_ns, spans[i].field_u64("shard").unwrap_or(u64::MAX)))
                .collect();
            by_dur.sort_by(|a, b| (b.0, a.1).cmp(&(a.0, b.1)));
            let parent_span = ids
                .get(&parent_id)
                .map_or_else(|| "<missing parent>".to_string(), |&i| spans[i].span.clone());
            fanouts.push(Fanout {
                trace_id,
                parent_span,
                width: by_dur.len(),
                straggler_shard: by_dur[0].1,
                straggler_dur_ns: by_dur[0].0,
                excess_ns: by_dur[0].0 - by_dur[1].0,
            });
        }

        traces.push(TraceTree { trace_id, spans: members, root, orphans, complete });
    }

    Analysis { spans, identityless, traces, fanouts }
}

/// Nearest-rank percentile of a **sorted** slice; 0 for empty input.
fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() * pct).div_ceil(100).max(1);
    sorted[rank - 1]
}

fn dist(label: &str, mut values: Vec<u64>) -> Value {
    values.sort_unstable();
    Value::Obj(vec![
        ("name".into(), Value::Str(label.into())),
        ("count".into(), Value::int(values.len())),
        ("p50_ns".into(), Value::Num(percentile(&values, 50).to_string())),
        ("p95_ns".into(), Value::Num(percentile(&values, 95).to_string())),
        ("p99_ns".into(), Value::Num(percentile(&values, 99).to_string())),
        ("max_ns".into(), Value::Num(values.last().copied().unwrap_or(0).to_string())),
    ])
}

/// Renders the canonical JSON report for an analysis.
///
/// `exemplars` bounds the slowest-complete-trace list.
pub fn report_json(analysis: &Analysis, exemplars: usize) -> String {
    let spans = &analysis.spans;

    // Per-span-name duration distributions.
    let mut per_span: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for s in spans {
        per_span.entry(&s.span).or_default().push(s.dur_ns);
    }
    let per_span: Vec<Value> = per_span.into_iter().map(|(name, durs)| dist(name, durs)).collect();

    // Hop decomposition over echo-carrying client.request spans.
    let mut wire = Vec::new();
    let mut server_queue = Vec::new();
    let mut engine = Vec::new();
    let mut cache_layer = Vec::new();
    let mut cache_hits = 0usize;
    let mut echoes = 0usize;
    for s in spans.iter().filter(|s| s.span == "client.request") {
        let (Some(queue), Some(handler)) =
            (s.field_u64("server_queue_ns"), s.field_u64("server_handler_ns"))
        else {
            continue;
        };
        echoes += 1;
        let eng = s.field_u64("server_engine_ns").unwrap_or(0);
        wire.push(s.dur_ns.saturating_sub(queue + handler));
        server_queue.push(queue);
        engine.push(eng);
        cache_layer.push(handler.saturating_sub(eng));
        if s.field_bool("server_cache_hit") == Some(true) {
            cache_hits += 1;
        }
    }
    let hops = Value::Obj(vec![
        ("echoes".into(), Value::int(echoes)),
        ("cache_hits".into(), Value::int(cache_hits)),
        (
            "decomposition".into(),
            Value::Arr(vec![
                dist("wire", wire),
                dist("server_queue", server_queue),
                dist("engine", engine),
                dist("cache_layer", cache_layer),
            ]),
        ),
    ]);

    // Frame-queue distributions (the `queue_ns` field on *.frame spans).
    let mut queues: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for s in spans {
        if let Some(q) = s.field_u64("queue_ns") {
            queues.entry(&s.span).or_default().push(q);
        }
    }
    let queues: Vec<Value> = queues.into_iter().map(|(name, qs)| dist(name, qs)).collect();

    // Fan-out / straggler attribution, aggregated per shard.
    let mut per_shard: BTreeMap<u64, (usize, u64)> = BTreeMap::new();
    for f in &analysis.fanouts {
        let entry = per_shard.entry(f.straggler_shard).or_default();
        entry.0 += 1;
        entry.1 += f.excess_ns;
    }
    let stragglers: Vec<Value> = per_shard
        .into_iter()
        .map(|(shard, (count, excess))| {
            Value::Obj(vec![
                ("shard".into(), Value::Num(shard.to_string())),
                ("straggler_count".into(), Value::int(count)),
                ("excess_ns".into(), Value::Num(excess.to_string())),
            ])
        })
        .collect();
    let mut worst_fanouts: Vec<&Fanout> = analysis.fanouts.iter().collect();
    worst_fanouts.sort_by(|a, b| (b.excess_ns, a.trace_id).cmp(&(a.excess_ns, b.trace_id)));
    let worst_fanouts: Vec<Value> = worst_fanouts
        .iter()
        .take(exemplars)
        .map(|f| {
            Value::Obj(vec![
                ("trace_id".into(), Value::Num(f.trace_id.to_string())),
                ("parent".into(), Value::Str(f.parent_span.clone())),
                ("width".into(), Value::int(f.width)),
                ("straggler_shard".into(), Value::Num(f.straggler_shard.to_string())),
                ("straggler_dur_ns".into(), Value::Num(f.straggler_dur_ns.to_string())),
                ("excess_ns".into(), Value::Num(f.excess_ns.to_string())),
            ])
        })
        .collect();

    // Slowest complete-trace exemplars, by root duration.
    let mut complete: Vec<&TraceTree> = analysis.traces.iter().filter(|t| t.complete).collect();
    complete.sort_by(|a, b| {
        let da = a.root.map_or(0, |i| spans[i].dur_ns);
        let db = b.root.map_or(0, |i| spans[i].dur_ns);
        (db, a.trace_id).cmp(&(da, b.trace_id))
    });
    let exemplar_values: Vec<Value> = complete
        .iter()
        .take(exemplars)
        .map(|t| {
            let root = t.root.map(|i| &spans[i]);
            Value::Obj(vec![
                ("trace_id".into(), Value::Num(t.trace_id.to_string())),
                ("root".into(), Value::Str(root.map_or(String::new(), |r| r.span.clone()))),
                ("dur_ns".into(), Value::Num(root.map_or(0, |r| r.dur_ns).to_string())),
                ("spans".into(), Value::int(t.spans.len())),
            ])
        })
        .collect();

    let summary = Value::Obj(vec![
        ("spans".into(), Value::int(spans.len())),
        ("identityless".into(), Value::int(analysis.identityless)),
        ("traces".into(), Value::int(analysis.traces.len())),
        ("complete".into(), Value::int(analysis.complete_traces())),
        ("orphans".into(), Value::int(analysis.traces.iter().map(|t| t.orphans).sum())),
        ("fanouts".into(), Value::int(analysis.fanouts.len())),
    ]);
    Value::Obj(vec![
        ("summary".into(), summary),
        ("per_span".into(), Value::Arr(per_span)),
        ("hops".into(), hops),
        ("queues".into(), Value::Arr(queues)),
        ("stragglers".into(), Value::Arr(stragglers)),
        ("worst_fanouts".into(), Value::Arr(worst_fanouts)),
        ("exemplars".into(), Value::Arr(exemplar_values)),
    ])
    .to_json_string()
}

/// Renders the human-readable report.
pub fn report_text(analysis: &Analysis, exemplars: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let spans = &analysis.spans;
    let _ = writeln!(
        out,
        "trace-report: {} span(s), {} trace(s) ({} complete), {} identityless, {} fan-out(s)",
        spans.len(),
        analysis.traces.len(),
        analysis.complete_traces(),
        analysis.identityless,
        analysis.fanouts.len(),
    );

    let mut per_span: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for s in spans {
        per_span.entry(&s.span).or_default().push(s.dur_ns);
    }
    for (name, mut durs) in per_span {
        durs.sort_unstable();
        let _ = writeln!(
            out,
            "  {name}: n={} p50={}ns p95={}ns p99={}ns max={}ns",
            durs.len(),
            percentile(&durs, 50),
            percentile(&durs, 95),
            percentile(&durs, 99),
            durs.last().copied().unwrap_or(0),
        );
    }

    let mut per_shard: BTreeMap<u64, (usize, u64)> = BTreeMap::new();
    for f in &analysis.fanouts {
        let entry = per_shard.entry(f.straggler_shard).or_default();
        entry.0 += 1;
        entry.1 += f.excess_ns;
    }
    for (shard, (count, excess)) in per_shard {
        let _ = writeln!(
            out,
            "  straggler shard {shard}: {count} fan-out(s), {excess}ns critical-path excess"
        );
    }

    let mut complete: Vec<&TraceTree> = analysis.traces.iter().filter(|t| t.complete).collect();
    complete.sort_by(|a, b| {
        let da = a.root.map_or(0, |i| spans[i].dur_ns);
        let db = b.root.map_or(0, |i| spans[i].dur_ns);
        (db, a.trace_id).cmp(&(da, b.trace_id))
    });
    for t in complete.iter().take(exemplars) {
        let root = t.root.map(|i| &spans[i]);
        let _ = writeln!(
            out,
            "  exemplar trace {}: root {} {}ns, {} span(s)",
            t.trace_id,
            root.map_or("?", |r| r.span.as_str()),
            root.map_or(0, |r| r.dur_ns),
            t.spans.len(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(
        span: &str,
        seq: u64,
        ids: (u64, u64, u64),
        start_ns: u64,
        dur_ns: u64,
        fields: &str,
    ) -> String {
        format!(
            "{{\"span\":\"{span}\",\"seq\":{seq},\"trace_id\":{},\"span_id\":{},\
             \"parent_span_id\":{},\"start_ns\":{start_ns},\"dur_ns\":{dur_ns},\
             \"fields\":[{fields}]}}",
            ids.0, ids.1, ids.2
        )
    }

    #[test]
    fn parses_spans_fields_and_tolerates_torn_tail() {
        let text = format!(
            "{}\n{}\n{{\"span\":\"torn",
            line("client.request", 0, (9, 1, 0), 5, 100, "{\"id\":4},{\"f\":1.5}"),
            line("server.frame", 1, (9, 2, 1), 10, 50, "{\"queue_ns\":7}"),
        );
        let spans = parse_trace(&text).expect("parses");
        assert_eq!(spans.len(), 2, "torn tail line skipped");
        assert_eq!(spans[0].field_u64("id"), Some(4));
        assert_eq!(spans[0].field_u64("f"), None, "floats are not u64 fields");
        assert_eq!(spans[1].field_u64("queue_ns"), Some(7));
        // The same torn line in the interior is a hard error.
        let bad = format!("{{\"span\":\"torn\n{}", line("a", 0, (1, 1, 0), 0, 1, ""));
        assert!(parse_trace(&bad).is_err());
    }

    #[test]
    fn reconstructs_trees_and_flags_completeness() {
        let text = [
            line("client.request", 0, (9, 1, 0), 0, 100, ""),
            line("server.frame", 1, (9, 2, 1), 10, 80, ""),
            line("reach.request.scalar", 2, (9, 3, 2), 20, 60, ""),
            // A second trace with an unresolved parent link: not complete.
            line("server.frame", 3, (11, 5, 4), 0, 10, ""),
            // An identityless span joins no trace.
            line("lonely", 4, (0, 0, 0), 0, 1, ""),
        ]
        .join("\n");
        let analysis = analyze(parse_trace(&text).expect("parses"));
        assert_eq!(analysis.identityless, 1);
        assert_eq!(analysis.traces.len(), 2);
        assert_eq!(analysis.complete_traces(), 1);
        let t9 = &analysis.traces[0];
        assert_eq!(t9.trace_id, 9);
        assert!(t9.complete && t9.orphans == 0);
        assert_eq!(t9.spans.len(), 3);
        assert_eq!(analysis.spans[t9.root.expect("root")].span, "client.request");
        let t11 = &analysis.traces[1];
        assert!(!t11.complete);
        assert_eq!(t11.orphans, 1);
    }

    #[test]
    fn attributes_the_fanout_straggler() {
        let text = [
            line("reach.request.scalar", 0, (9, 1, 0), 0, 900, ""),
            line("client.request", 1, (9, 2, 1), 10, 300, "{\"shard\":0}"),
            line("client.request", 2, (9, 3, 1), 10, 700, "{\"shard\":1}"),
            line("client.request", 3, (9, 4, 1), 10, 250, "{\"shard\":2}"),
        ]
        .join("\n");
        let analysis = analyze(parse_trace(&text).expect("parses"));
        assert_eq!(analysis.fanouts.len(), 1);
        let f = &analysis.fanouts[0];
        assert_eq!(f.parent_span, "reach.request.scalar");
        assert_eq!(f.width, 3);
        assert_eq!(f.straggler_shard, 1);
        assert_eq!(f.straggler_dur_ns, 700);
        assert_eq!(f.excess_ns, 400, "gap to the second-slowest shard");
    }

    #[test]
    fn report_json_is_canonical_and_integer_only() {
        let text = [
            line(
                "client.request",
                0,
                (9, 1, 0),
                0,
                100,
                concat!(
                    "{\"id\":1},{\"server_queue_ns\":5},{\"server_handler_ns\":40},",
                    "{\"server_engine_ns\":30},{\"server_cache_hit\":false}"
                ),
            ),
            line("server.frame", 1, (9, 2, 1), 10, 80, "{\"queue_ns\":5}"),
            line("reach.request.scalar", 2, (9, 3, 2), 20, 60, "{\"engine_ns\":30}"),
        ]
        .join("\n");
        let analysis = analyze(parse_trace(&text).expect("parses"));
        let report = report_json(&analysis, 3);
        // The report round-trips through the STRICT parser: everything in
        // it is an integer, and the bytes are canonical.
        let value = json::parse(&report).expect("strict parse");
        assert_eq!(value.to_json_string(), report);
        let summary = value.get("summary").expect("summary");
        assert_eq!(summary.get("complete"), Some(&Value::Num("1".into())));
        let hops = value.get("hops").expect("hops");
        assert_eq!(hops.get("echoes"), Some(&Value::Num("1".into())));
        // wire = 100 - 5 - 40 = 55; cache_layer = 40 - 30 = 10.
        let decomposition = match hops.get("decomposition") {
            Some(Value::Arr(items)) => items,
            other => panic!("decomposition: {other:?}"),
        };
        assert_eq!(decomposition[0].get("p50_ns"), Some(&Value::Num("55".into())));
        assert_eq!(decomposition[3].get("p50_ns"), Some(&Value::Num("10".into())));
        let text_report = report_text(&analysis, 3);
        assert!(text_report.contains("1 complete"), "{text_report}");
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 95), 95);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&[7], 99), 7);
        assert_eq!(percentile(&[], 50), 0);
    }
}
