//! A dependency-free Rust lexer producing a token stream with spans.
//!
//! The lint engine's foundation: instead of matching substrings against raw
//! lines (which misfires inside block comments, raw strings and multi-line
//! string literals), every file is tokenized once and the rules walk the
//! token stream. The lexer handles the full literal surface this workspace
//! uses:
//!
//! * `//` line comments and **nested** `/* /* */ */` block comments
//!   (possibly spanning many lines);
//! * string literals with escapes, including multi-line strings;
//! * raw strings `r"…"` / `r#"…"#` with any number of hashes, byte strings
//!   `b"…"`, raw byte strings `br#"…"#`;
//! * char literals (`'a'`, `'\n'`, `'"'`, `'\u{1F600}'`), byte chars
//!   (`b'x'`), and lifetimes (`'a`, `'static`, `'_`);
//! * raw identifiers (`r#fn`);
//! * integer vs float literals (`1.5`, `1.`, `1e-3`, `1_000.25f64`, hex /
//!   octal / binary ints, tuple indices like `pair.0` stay integers);
//! * multi-char operators (`==`, `!=`, `<=`, `::`, `..=`, …) joined
//!   greedily, so `<=` can never be mistaken for `=` + `=`.
//!
//! It is a *lossy* lexer by design: tokens carry their exact source text and
//! a `(line, col)` start position, but no trivia — whitespace is dropped and
//! comments are ordinary tokens the rules can filter or inspect (the waiver
//! parser reads them; pattern rules skip them).

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, stored unprefixed).
    Ident,
    /// Lifetime (`'a`, `'static`, `'_`) — stored with the leading quote.
    Lifetime,
    /// Integer literal (any base, with suffix/underscores).
    Int,
    /// Floating-point literal (`1.0`, `1.`, `1e-3`, `2.5f32`).
    Float,
    /// String literal of any flavour: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#` — possibly spanning multiple lines.
    Str,
    /// Char or byte-char literal (`'x'`, `b'x'`).
    Char,
    /// `// …` line comment (text excludes the newline).
    LineComment,
    /// `/* … */` block comment, nesting-aware, possibly multi-line.
    BlockComment,
    /// Operator / punctuation, multi-char ops pre-joined (`==`, `::`, …).
    Punct,
}

/// One token with its source text and 1-based start position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Exact source text (for `Ident`: without the `r#` prefix).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based column (in chars) of the token's first character.
    pub col: usize,
}

impl Token {
    /// Whether this token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Whether this token is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }

    /// Whether this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Three-char operators, longest-match-first within their length class.
const PUNCT3: [&str; 4] = ["..=", "...", "<<=", ">>="];
/// Two-char operators.
const PUNCT2: [&str; 19] = [
    "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=", "-=", "*=", "/=", "%=", "^=",
    "&=", "|=", "<<",
];

/// Cursor over the source with line/col bookkeeping.
struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
}

impl Cursor {
    fn new(source: &str) -> Self {
        Self { chars: source.chars().collect(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consumes `n` chars, returning them as a String.
    fn take(&mut self, n: usize) -> String {
        let mut out = String::new();
        for _ in 0..n {
            match self.bump() {
                Some(c) => out.push(c),
                None => break,
            }
        }
        out
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenizes `source`. Never fails: unterminated literals run to the end of
/// input and lone unexpected characters become single-char `Punct` tokens,
/// so the rules always see *something* sensible for malformed input.
pub fn lex(source: &str) -> Vec<Token> {
    let mut cur = Cursor::new(source);
    let mut tokens = Vec::new();

    while let Some(c) = cur.peek(0) {
        // Whitespace: skip.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let (line, col) = (cur.line, cur.col);
        let push = |tokens: &mut Vec<Token>, kind, text| {
            tokens.push(Token { kind, text, line, col });
        };

        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            push(&mut tokens, TokenKind::LineComment, text);
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let mut text = cur.take(2);
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        text.push_str(&cur.take(2));
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        text.push_str(&cur.take(2));
                    }
                    (Some(_), _) => text.push_str(&cur.take(1)),
                    (None, _) => break,
                }
            }
            push(&mut tokens, TokenKind::BlockComment, text);
            continue;
        }

        // Raw strings / raw identifiers: r"…", r#"…"#, r#ident.
        if c == 'r' {
            if let Some(text) = lex_raw_string(&mut cur, 1) {
                push(&mut tokens, TokenKind::Str, text);
                continue;
            }
            if cur.peek(1) == Some('#') && cur.peek(2).is_some_and(is_ident_start) {
                cur.take(2); // r#
                let mut text = String::new();
                while cur.peek(0).is_some_and(is_ident_continue) {
                    text.push(cur.bump().unwrap_or_default());
                }
                push(&mut tokens, TokenKind::Ident, text);
                continue;
            }
        }

        // Byte strings / byte chars: b"…", br#"…"#, b'x'.
        if c == 'b' {
            if cur.peek(1) == Some('"') {
                let mut text = cur.take(1);
                text.push_str(&lex_plain_string(&mut cur));
                push(&mut tokens, TokenKind::Str, text);
                continue;
            }
            if cur.peek(1) == Some('r') {
                if let Some(text) = lex_raw_string(&mut cur, 2) {
                    push(&mut tokens, TokenKind::Str, text);
                    continue;
                }
            }
            if cur.peek(1) == Some('\'') {
                let mut text = cur.take(1);
                text.push_str(&lex_char_body(&mut cur));
                push(&mut tokens, TokenKind::Char, text);
                continue;
            }
        }

        // Identifiers / keywords.
        if is_ident_start(c) {
            let mut text = String::new();
            while cur.peek(0).is_some_and(is_ident_continue) {
                text.push(cur.bump().unwrap_or_default());
            }
            push(&mut tokens, TokenKind::Ident, text);
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let (text, kind) = lex_number(&mut cur);
            push(&mut tokens, kind, text);
            continue;
        }

        // Plain strings.
        if c == '"' {
            let text = lex_plain_string(&mut cur);
            push(&mut tokens, TokenKind::Str, text);
            continue;
        }

        // Char literal or lifetime.
        if c == '\'' {
            let first = cur.peek(1);
            let is_char = match first {
                Some('\\') => true,
                // 'x' — any single char directly followed by a closing quote
                // (covers '"', ' ', 'a'); lifetimes have no closing quote.
                Some(_) => cur.peek(2) == Some('\''),
                None => false,
            };
            if is_char {
                let text = lex_char_body(&mut cur);
                push(&mut tokens, TokenKind::Char, text);
            } else {
                // Lifetime: quote + ident chars.
                let mut text = cur.take(1);
                while cur.peek(0).is_some_and(is_ident_continue) {
                    text.push(cur.bump().unwrap_or_default());
                }
                push(&mut tokens, TokenKind::Lifetime, text);
            }
            continue;
        }

        // Punctuation, multi-char greedy.
        let grab =
            |cur: &Cursor, n: usize| -> String { (0..n).filter_map(|i| cur.peek(i)).collect() };
        let three = grab(&cur, 3);
        if PUNCT3.contains(&three.as_str()) {
            push(&mut tokens, TokenKind::Punct, cur.take(3));
            continue;
        }
        let two = grab(&cur, 2);
        if PUNCT2.contains(&two.as_str()) {
            push(&mut tokens, TokenKind::Punct, cur.take(2));
            continue;
        }
        push(&mut tokens, TokenKind::Punct, cur.take(1));
    }
    tokens
}

/// Lexes `"…"` with escape handling (cursor on the opening quote).
/// Multi-line strings are consumed wholesale; unterminated ones run out.
fn lex_plain_string(cur: &mut Cursor) -> String {
    let mut text = cur.take(1); // opening "
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push_str(&cur.take(2));
            continue;
        }
        text.push_str(&cur.take(1));
        if c == '"' {
            break;
        }
    }
    text
}

/// Lexes a raw (byte) string starting `prefix_len` chars before the hashes
/// (`r` → 1, `br` → 2). Returns `None` if the cursor is not actually at a
/// raw string (e.g. `r#ident` or a plain identifier starting with r).
fn lex_raw_string(cur: &mut Cursor, prefix_len: usize) -> Option<String> {
    let mut hashes = 0usize;
    while cur.peek(prefix_len + hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek(prefix_len + hashes) != Some('"') {
        return None;
    }
    let mut text = cur.take(prefix_len + hashes + 1);
    // Scan for `"` followed by `hashes` hashes.
    'outer: while let Some(c) = cur.peek(0) {
        if c == '"' {
            for i in 0..hashes {
                if cur.peek(1 + i) != Some('#') {
                    text.push_str(&cur.take(1));
                    continue 'outer;
                }
            }
            text.push_str(&cur.take(1 + hashes));
            break;
        }
        text.push_str(&cur.take(1));
    }
    Some(text)
}

/// Lexes the `'…'` part of a char literal (cursor on the opening quote).
fn lex_char_body(cur: &mut Cursor) -> String {
    let mut text = cur.take(1); // opening '
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push_str(&cur.take(2));
            continue;
        }
        text.push_str(&cur.take(1));
        if c == '\'' {
            break;
        }
        // Safety valve: a malformed literal never swallows a whole line.
        if c == '\n' {
            break;
        }
    }
    text
}

/// Lexes a numeric literal (cursor on the first digit). Distinguishes
/// integers from floats per Rust's rules: a float needs a fractional dot
/// (not followed by an identifier or another dot) or an exponent.
fn lex_number(cur: &mut Cursor) -> (String, TokenKind) {
    let mut text = String::new();
    // Radix prefixes are always integers.
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B')) {
        text.push_str(&cur.take(2));
        while cur.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
            text.push_str(&cur.take(1));
        }
        return (text, TokenKind::Int);
    }
    let mut is_float = false;
    while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
        text.push_str(&cur.take(1));
    }
    // Fractional part: `.` not followed by `.` (range) or ident-start
    // (method call / field). `.` followed by a digit or by nothing/space
    // makes a float (`1.5`, `1.`).
    if cur.peek(0) == Some('.') {
        let next = cur.peek(1);
        let fractional = match next {
            Some('.') => false,
            Some(c) if is_ident_start(c) => false,
            _ => true,
        };
        if fractional {
            is_float = true;
            text.push_str(&cur.take(1));
            while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                text.push_str(&cur.take(1));
            }
        }
    }
    // Exponent: e/E followed by optional sign and a digit.
    if matches!(cur.peek(0), Some('e' | 'E')) {
        let (sign, digit) = match cur.peek(1) {
            Some('+' | '-') => (1, cur.peek(2)),
            other => (0, other),
        };
        if digit.is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            text.push_str(&cur.take(1 + sign));
            while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                text.push_str(&cur.take(1));
            }
        }
    }
    // Type suffix (`f64`, `u32`, …): a float suffix forces float-ness.
    if cur.peek(0).is_some_and(is_ident_start) {
        let mut suffix = String::new();
        while cur.peek(0).is_some_and(is_ident_continue) {
            suffix.push_str(&cur.take(1));
        }
        if suffix == "f32" || suffix == "f64" {
            is_float = true;
        }
        text.push_str(&suffix);
    }
    (text, if is_float { TokenKind::Float } else { TokenKind::Int })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = lex("fn main() { a == b; c <= d }");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["fn", "main", "(", ")", "{", "a", "==", "b", ";", "c", "<=", "d", "}"]);
        assert_eq!(toks[6].kind, TokenKind::Punct);
    }

    #[test]
    fn spans_are_one_based_line_col() {
        let toks = lex("a\n  bb\n");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn nested_block_comment_is_one_token() {
        let toks = lex("a /* x /* y */ z */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].kind, TokenKind::BlockComment);
        assert_eq!(toks[1].text, "/* x /* y */ z */");
        assert!(toks[2].is_ident("b"));
    }

    #[test]
    fn multi_line_block_comment_tracks_lines() {
        let toks = lex("/* line1\nline2\n*/ after");
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn raw_string_with_quotes_and_hashes() {
        let toks = lex(r####"let s = r#"contains " quote"#; x"####);
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).expect("string token");
        assert_eq!(s.text, r###"r#"contains " quote"#"###);
        assert!(toks.last().expect("tokens").is_ident("x"));
    }

    #[test]
    fn raw_identifier_is_ident_not_string() {
        let toks = lex("r#fn x");
        assert_eq!(toks[0].kind, TokenKind::Ident);
        assert_eq!(toks[0].text, "fn");
        assert!(toks[1].is_ident("x"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r##"b"bytes" br#"raw"# b'x'"##);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1].0, TokenKind::Str);
        assert_eq!(toks[2].0, TokenKind::Char);
    }

    #[test]
    fn multi_line_string_is_one_token() {
        let toks = lex("let s = \"one\ntwo .unwrap() three\n\"; done");
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).expect("string token");
        assert!(s.text.contains("unwrap"));
        assert!(toks.last().expect("tokens").is_ident("done"));
    }

    #[test]
    fn char_literal_quote_then_code() {
        let toks = lex("c == '\"' && f()");
        assert_eq!(toks[2].kind, TokenKind::Char);
        assert_eq!(toks[2].text, "'\"'");
        assert!(toks[3].is_punct("&&"));
    }

    #[test]
    fn escaped_char_literals() {
        let toks = lex(r"'\n' '\'' '\u{1F600}'");
        assert!(toks.iter().all(|t| t.kind == TokenKind::Char), "{toks:?}");
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = lex("fn f<'a>(x: &'a str, y: &'static u8, z: &'_ u8) {}");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a", "'static", "'_"]);
    }

    #[test]
    fn number_classification() {
        assert_eq!(kinds("1")[0].0, TokenKind::Int);
        assert_eq!(kinds("1.5")[0].0, TokenKind::Float);
        assert_eq!(kinds("1.")[0].0, TokenKind::Float);
        assert_eq!(kinds("1e-3")[0].0, TokenKind::Float);
        assert_eq!(kinds("1E9")[0].0, TokenKind::Float);
        assert_eq!(kinds("1_000.25f64")[0].0, TokenKind::Float);
        assert_eq!(kinds("2f64")[0].0, TokenKind::Float);
        assert_eq!(kinds("0xFF")[0].0, TokenKind::Int);
        assert_eq!(kinds("1_000u64")[0].0, TokenKind::Int);
    }

    #[test]
    fn tuple_index_and_method_calls_are_not_floats() {
        // pair.0 → ident, '.', int
        let toks = kinds("pair.0");
        assert_eq!(toks[2].0, TokenKind::Int);
        // 1.max(2) → int, '.', ident
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokenKind::Int, "1".into()));
        assert_eq!(toks[2], (TokenKind::Ident, "max".into()));
        // 0..10 → int, '..', int
        let toks = kinds("0..10");
        assert_eq!(toks[0].0, TokenKind::Int);
        assert_eq!(toks[1], (TokenKind::Punct, "..".into()));
        assert_eq!(toks[2].0, TokenKind::Int);
    }

    #[test]
    fn range_ops_and_comparison_joins() {
        let toks = kinds("a..=b x >= y z != w p => q");
        let puncts: Vec<String> =
            toks.into_iter().filter(|(k, _)| *k == TokenKind::Punct).map(|(_, t)| t).collect();
        assert_eq!(puncts, ["..=", ">=", "!=", "=>"]);
    }

    #[test]
    fn unterminated_string_runs_to_end() {
        let toks = lex("let s = \"never closed");
        assert_eq!(toks.last().expect("tokens").kind, TokenKind::Str);
    }
}
