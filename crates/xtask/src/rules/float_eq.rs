//! `float-eq`: `==` / `!=` with a floating-point literal on either side.
//!
//! The operator and the literal are single tokens, so `<=` / `>=` / `=>`
//! can never shadow a comparison (they lex as one token), tuple-field
//! accesses like `pair.0` are integer tokens, and a comparison split across
//! lines (`x ==\n    1.0`) — invisible to the old line scanner — is caught.

use crate::lexer::TokenKind;

use super::{Context, Rule, Violation};

pub(super) fn check(ctx: &Context<'_>, out: &mut Vec<Violation>) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let left = i > 0 && toks[i - 1].kind == TokenKind::Float;
        // Allow a unary sign before the right-hand literal: `x == -1.5`.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|n| n.is_punct("-") || n.is_punct("+")) {
            j += 1;
        }
        let right = toks.get(j).is_some_and(|n| n.kind == TokenKind::Float);
        if left || right {
            out.push(ctx.finding(Rule::FloatEq, t));
        }
    }
}
