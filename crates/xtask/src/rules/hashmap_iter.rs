//! `hashmap-iteration`: iterating a `std::collections::HashMap` / `HashSet`
//! in order-policed code.
//!
//! `HashMap` iteration order is unspecified and — with a randomly seeded
//! hasher — differs run to run; even with the workspace's fixed FNV hasher
//! it depends on insertion history and capacity, so any fold, collect or
//! side effect driven by map iteration threatens the bit-identity contract
//! (DESIGN.md §9). Point operations (`get` / `insert` / `remove` / `len`)
//! are order-free and stay legal, which is how `reach-cache`'s LRU and
//! single-flight tables pass this rule unmodified: they never iterate.
//!
//! Detection is a two-pass token heuristic, honest about its limits:
//!
//! 1. collect names declared with a `HashMap` / `HashSet` type or
//!    initializer (`map: HashMap<…>`, `let s = HashSet::new()`);
//! 2. flag iteration on those names — `name.iter()`, `.keys()`,
//!    `.values()`, `.drain()`, `.retain()`, `.into_iter()`, and bare
//!    `for x in [&]name { … }` loops.
//!
//! Aliasing through references or passing the map to another function is
//! invisible to a single-file lexer; the rule catches the direct forms,
//! which is where every historical regression has lived. Need ordered
//! iteration? Use `BTreeMap`, or collect-and-sort, or waive with a reason
//! proving order cannot reach an output.

use crate::lexer::TokenKind;

use super::{Context, Rule, Violation};

/// Methods whose results or side effects observe hash order.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

pub(super) fn check(ctx: &Context<'_>, out: &mut Vec<Violation>) {
    if !ctx.class.order_policed {
        return;
    }
    let toks = ctx.tokens;

    // Pass 1: names declared as hash containers.
    let mut names: Vec<&str> = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("HashMap") || toks[i].is_ident("HashSet")) {
            continue;
        }
        // Walk back over the path prefix (`std :: collections ::`).
        let mut j = i;
        while j >= 2 && toks[j - 1].is_punct("::") && toks[j - 2].kind == TokenKind::Ident {
            j -= 2;
        }
        // Skip `&` / `mut` between the binding and the type.
        while j >= 1
            && (toks[j - 1].is_punct("&")
                || toks[j - 1].is_punct("&&")
                || toks[j - 1].is_ident("mut"))
        {
            j -= 1;
        }
        if j >= 2
            && (toks[j - 1].is_punct(":") || toks[j - 1].is_punct("="))
            && toks[j - 2].kind == TokenKind::Ident
        {
            names.push(toks[j - 2].text.as_str());
        }
    }
    if names.is_empty() {
        return;
    }

    // Pass 2: iteration over those names.
    for i in 0..toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokenKind::Ident || !names.contains(&t.text.as_str()) {
            continue;
        }
        // `name.iter()` and friends.
        if toks.get(i + 1).is_some_and(|n| n.is_punct("."))
            && toks.get(i + 2).is_some_and(|n| {
                n.kind == TokenKind::Ident && ITER_METHODS.contains(&n.text.as_str())
            })
            && toks.get(i + 3).is_some_and(|n| n.is_punct("("))
        {
            out.push(ctx.finding(Rule::HashMapIteration, &toks[i + 2]));
            continue;
        }
        // `for x in [&][mut] [self.]name { … }`.
        if toks.get(i + 1).is_some_and(|n| n.is_punct("{")) {
            let mut j = i;
            while j > 0 {
                let prev = &toks[j - 1];
                if prev.is_punct(".")
                    || prev.is_punct("&")
                    || prev.is_punct("&&")
                    || prev.is_ident("mut")
                    || prev.is_ident("self")
                {
                    j -= 1;
                } else {
                    break;
                }
            }
            if j > 0 && toks[j - 1].is_ident("in") {
                out.push(ctx.finding(Rule::HashMapIteration, t));
            }
        }
    }
}
