//! `env-read-outside-config`: `std::env::var` of a `UOF_*` knob outside a
//! `from_env`-style constructor.
//!
//! The workspace's configuration contract (established with the cache and
//! telemetry layers) is that **only `from_env` constructors read the
//! environment**; explicitly constructed configs are immune, which is what
//! lets the CI sweeps (`UOF_REACH_CACHE=0`, `UOF_TELEMETRY=1`, …) run the
//! whole suite without perturbing tests that pin their own configuration.
//! An `env::var("UOF_…")` call anywhere else silently couples behaviour to
//! ambient state.
//!
//! The rule fires on `env::var` / `env::var_os` calls when the innermost
//! enclosing function's name does not contain `from_env`, and the argument
//! is either a string literal mentioning `UOF_` or a non-literal expression
//! (which the lexer cannot prove harmless, so it is treated
//! conservatively — waive with a reason when a helper is only ever invoked
//! by a `from_env` constructor). Reads of non-`UOF_` literals (`PATH`,
//! `CARGO_MANIFEST_DIR`, …) are out of scope, as is the compile-time `env!`
//! macro, which lexes as `env` `!` and never matches the `env` `::` `var`
//! pattern.

use crate::lexer::TokenKind;

use super::{enclosing_fn, Context, Rule, Violation};

pub(super) fn check(ctx: &Context<'_>, out: &mut Vec<Violation>) {
    if !ctx.class.env_policed {
        return;
    }
    let toks = ctx.tokens;
    let enclosing = enclosing_fn(toks);
    for i in 2..toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if !(t.is_ident("var") || t.is_ident("var_os")) {
            continue;
        }
        if !(toks[i - 1].is_punct("::") && toks[i - 2].is_ident("env")) {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        // Argument: a literal not mentioning UOF_ is out of scope; a UOF_
        // literal or anything non-literal is policed.
        if let Some(arg) = toks.get(i + 2) {
            if arg.kind == TokenKind::Str && !arg.text.contains("UOF_") {
                continue;
            }
        }
        let fn_name = enclosing[i].map(|idx| toks[idx].text.as_str()).unwrap_or("");
        if fn_name.contains("from_env") {
            continue;
        }
        out.push(ctx.finding(Rule::EnvReadOutsideConfig, t));
    }
}
