//! The token-level rule engine: rule catalog, file classes, waiver parsing,
//! `#[cfg(test)]`-region tracking, and per-rule dispatch.
//!
//! Every rule walks the same token stream (comments filtered out, string
//! literals atomic), so a pattern inside a block comment, raw string or
//! multi-line string literal can never fire — the false-positive classes the
//! old line-local substring scanner suffered from. Conversely a construct
//! split across lines (e.g. `x ==\n    1.0`) is now caught, because the
//! rules see adjacent tokens, not lines.

mod allow_attr;
mod env_read;
mod float_eq;
mod hashmap_iter;
mod patterns;

use std::fmt;

use crate::lexer::{lex, Token, TokenKind};

/// The lint rules the engine knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `unwrap()` / `expect(` / `panic!(` in library non-test code.
    NoUnwrap,
    /// Nondeterministic RNG construction in simulation crates.
    NondeterministicRng,
    /// `==` / `!=` against floating-point literals.
    FloatEq,
    /// `#[allow(...)]` without a justification comment.
    UnjustifiedAllow,
    /// Direct `std::thread::spawn` in library code that should use the
    /// vendored rayon pool instead.
    ThreadSpawn,
    /// `println!` / `eprintln!` / `print!` / `eprint!` in library code that
    /// should report through the telemetry layer instead of stdio.
    NoPrintInLibrary,
    /// `std::env::var` of a `UOF_*` knob (or of a non-literal name) outside
    /// a `from_env`-style constructor — the "explicit configs are immune to
    /// the environment" contract.
    EnvReadOutsideConfig,
    /// Iterating a `std::collections::HashMap` / `HashSet` in
    /// order-policed (simulation / cache) code: iteration order is
    /// nondeterministic and threatens bit-identity.
    HashMapIteration,
    /// `Instant::now` / `SystemTime::now` in simulation-crate library code:
    /// simulated results must never depend on the wall clock.
    WallclockInSim,
    /// A metric or span name argument (`counter(…)`, `gauge(…)`,
    /// `histogram(…)`, `latency_histogram(…)`, `span(…)`) that is not a
    /// string literal in library code: the metric namespace must stay
    /// greppable, and dynamic names can explode snapshot cardinality.
    DynamicMetricName,
    /// A malformed `lint:allow` waiver: unknown rule name, missing reason,
    /// or unterminated marker. Not waivable.
    BadWaiver,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 11] = [
        Rule::NoUnwrap,
        Rule::NondeterministicRng,
        Rule::FloatEq,
        Rule::UnjustifiedAllow,
        Rule::ThreadSpawn,
        Rule::NoPrintInLibrary,
        Rule::EnvReadOutsideConfig,
        Rule::HashMapIteration,
        Rule::WallclockInSim,
        Rule::DynamicMetricName,
        Rule::BadWaiver,
    ];

    /// The rule's waiver / report name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::NondeterministicRng => "nondeterministic-rng",
            Rule::FloatEq => "float-eq",
            Rule::UnjustifiedAllow => "unjustified-allow",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::NoPrintInLibrary => "no-print-in-library",
            Rule::EnvReadOutsideConfig => "env-read-outside-config",
            Rule::HashMapIteration => "hashmap-iteration",
            Rule::WallclockInSim => "wallclock-in-sim",
            Rule::DynamicMetricName => "dynamic-metric-name",
            Rule::BadWaiver => "bad-waiver",
        }
    }

    /// The rule's severity label in reports. Everything the gate enforces
    /// is an error today; the field exists so the JSON format does not have
    /// to change when advisory rules arrive.
    pub fn severity(self) -> &'static str {
        "error"
    }

    /// Parses a waiver name back to a rule.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// Index in [`Rule::ALL`], for stable sort order.
    fn order(self) -> usize {
        Rule::ALL.iter().position(|r| *r == self).unwrap_or(Rule::ALL.len())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a file participates in linting, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Library (non-test, non-bin) code: [`Rule::NoUnwrap`] applies.
    pub library: bool,
    /// Simulation crate: [`Rule::NondeterministicRng`] applies.
    pub simulation: bool,
    /// Library code that must parallelise through the vendored rayon pool:
    /// [`Rule::ThreadSpawn`] applies.
    pub thread_policed: bool,
    /// Library code that must not write to stdio:
    /// [`Rule::NoPrintInLibrary`] applies.
    pub print_policed: bool,
    /// Code that must not read `UOF_*` environment knobs outside a
    /// `from_env`-style constructor: [`Rule::EnvReadOutsideConfig`] applies.
    pub env_policed: bool,
    /// Library code whose outputs must be bit-identical run to run
    /// (simulation crates and the reach cache): [`Rule::HashMapIteration`]
    /// applies.
    pub order_policed: bool,
    /// Simulation-crate library code: [`Rule::WallclockInSim`] applies.
    /// Telemetry (its whole purpose is timing) and `reach-api` rate
    /// limiting (operational, not simulated) are exempt by class.
    pub wallclock_policed: bool,
    /// Library code whose metric/span names must be string literals:
    /// [`Rule::DynamicMetricName`] applies. `uof-telemetry` itself (the
    /// registry plumbing is generic over names) is exempt by class.
    pub metric_name_policed: bool,
}

impl FileClass {
    /// Class under which every rule fires — what the unit-test fixtures use.
    pub const STRICT: Self = Self {
        library: true,
        simulation: true,
        thread_policed: true,
        print_policed: true,
        env_policed: true,
        order_policed: true,
        wallclock_policed: true,
        metric_name_policed: true,
    };
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated rule.
    pub rule: Rule,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (in chars) of the offending token.
    pub col: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// Whether an inline `lint:allow` waiver covers this finding. Waived
    /// findings are reported (JSON `waived: true`) but do not fail the gate.
    pub waived: bool,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}:{}: [{}] {}", self.line, self.col, self.rule, self.excerpt)
    }
}

/// A waiver comment parsed from source:
/// `// lint:allow(<rule-a>, <rule-b>) — reason`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// 1-based line the `lint:allow` marker appears on. The waiver covers
    /// findings on this line and the next one.
    pub line: usize,
    /// The rules it waives.
    pub rules: Vec<Rule>,
    /// The mandatory justification.
    pub reason: String,
}

/// Everything the per-rule checkers need.
pub(crate) struct Context<'a> {
    /// Code tokens (comments stripped).
    pub tokens: &'a [Token],
    /// Parallel to `tokens`: inside a `#[cfg(test)]` region.
    pub in_test: &'a [bool],
    /// The file's class.
    pub class: FileClass,
    /// Raw source lines, for excerpts.
    pub lines: &'a [&'a str],
}

impl Context<'_> {
    /// Builds a finding at a token's span.
    pub fn finding(&self, rule: Rule, at: &Token) -> Violation {
        let excerpt: String = self
            .lines
            .get(at.line.saturating_sub(1))
            .map(|l| l.trim().chars().take(120).collect())
            .unwrap_or_default();
        Violation { rule, line: at.line, col: at.col, excerpt, waived: false }
    }
}

/// Analyzes one file's source under a [`FileClass`], returning **all**
/// findings — waived ones carry `waived: true`. Findings are sorted by
/// `(line, col, rule)`.
pub fn analyze_source(source: &str, class: FileClass) -> Vec<Violation> {
    let all_tokens = lex(source);
    let lines: Vec<&str> = source.lines().collect();

    // Split trivia from code, preserving spans.
    let mut code: Vec<Token> = Vec::with_capacity(all_tokens.len());
    let mut comments: Vec<Token> = Vec::new();
    for token in all_tokens {
        if token.is_comment() {
            comments.push(token);
        } else {
            code.push(token);
        }
    }
    let in_test = test_regions(&code);

    let ctx = Context { tokens: &code, in_test: &in_test, class, lines: &lines };
    let mut findings = Vec::new();
    patterns::check(&ctx, &mut findings);
    float_eq::check(&ctx, &mut findings);
    allow_attr::check(&ctx, &comments, &mut findings);
    env_read::check(&ctx, &mut findings);
    hashmap_iter::check(&ctx, &mut findings);

    // Waivers: parse every comment, emit bad-waiver findings for malformed
    // markers, and mark covered findings as waived.
    let mut waivers = Vec::new();
    for comment in &comments {
        parse_waiver_comment(comment, &lines, &mut waivers, &mut findings);
    }
    for finding in &mut findings {
        if finding.rule == Rule::BadWaiver {
            continue; // not waivable
        }
        let covered = waivers.iter().any(|w| {
            (w.line == finding.line || w.line + 1 == finding.line)
                && w.rules.contains(&finding.rule)
        });
        if covered {
            finding.waived = true;
        }
    }

    findings.sort_by(|a, b| (a.line, a.col, a.rule.order()).cmp(&(b.line, b.col, b.rule.order())));
    findings
}

/// Parses the waivers in one file (for the `lint --waivers` inventory).
/// Malformed markers are skipped here — `analyze_source` reports them.
pub fn waivers_in_source(source: &str) -> Vec<Waiver> {
    let lines: Vec<&str> = source.lines().collect();
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for token in lex(source) {
        if token.is_comment() {
            parse_waiver_comment(&token, &lines, &mut waivers, &mut findings);
        }
    }
    waivers
}

const MARKER: &str = "lint:allow(";

/// Parses a `lint:allow(<rule>)` marker out of one comment token, pushing a
/// [`Waiver`] when well-formed and a [`Rule::BadWaiver`] finding when not.
///
/// Markers whose rule list contains `<` or `>` are documentation
/// placeholders (`lint:allow(<rule>) — reason` in prose) and are ignored
/// entirely — rule names cannot contain angle brackets.
fn parse_waiver_comment(
    comment: &Token,
    lines: &[&str],
    waivers: &mut Vec<Waiver>,
    findings: &mut Vec<Violation>,
) {
    let Some(marker) = comment.text.find(MARKER) else { return };
    // The marker's own line: comments can span lines (block comments), so
    // offset the token's start line by newlines preceding the marker.
    let line = comment.line + comment.text[..marker].matches('\n').count();
    let excerpt: String = lines
        .get(line.saturating_sub(1))
        .map(|l| l.trim().chars().take(120).collect())
        .unwrap_or_default();
    let mut bad = |why: &str| {
        findings.push(Violation {
            rule: Rule::BadWaiver,
            line,
            col: comment.col,
            excerpt: format!("{why}: {excerpt}"),
            waived: false,
        });
    };

    let after = &comment.text[marker + MARKER.len()..];
    let Some(close) = after.find(')') else {
        bad("unterminated lint:allow marker");
        return;
    };
    let names = &after[..close];
    if names.contains(['<', '>']) {
        return; // documentation placeholder, not a real waiver
    }
    let mut rules = Vec::new();
    let mut unknown = Vec::new();
    for name in names.split(',') {
        let name = name.trim();
        if name.is_empty() {
            continue;
        }
        match Rule::from_name(name) {
            Some(rule) => rules.push(rule),
            None => unknown.push(name.to_string()),
        }
    }
    for name in &unknown {
        bad(&format!("unknown rule `{name}` in lint:allow"));
    }
    let mut reason = after[close + 1..].trim_start_matches([' ', '\u{2014}', '-', ':']).trim();
    if let Some(stripped) = reason.strip_suffix("*/") {
        reason = stripped.trim();
    }
    let reason = reason.lines().next().unwrap_or("").trim();
    if reason.is_empty() {
        bad("lint:allow without a reason");
        return;
    }
    if rules.is_empty() {
        if unknown.is_empty() {
            bad("lint:allow with an empty rule list");
        }
        return;
    }
    waivers.push(Waiver { line, rules, reason: reason.to_string() });
}

/// Marks every code token inside a `#[cfg(test)]` item's extent.
///
/// The attribute sequence `# [ cfg ( test ) ]` (or the inner form with a
/// `!`) starts a region; the region covers subsequent attributes and either
/// the item's brace-matched `{ … }` body or, for a brace-less item
/// (`mod tests;`, `#[cfg(test)] use …;`), just up to the `;` — so a later
/// unrelated braced item is never silently exempted.
fn test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(after_attr) = match_cfg_test(tokens, i) {
            let mut j = after_attr;
            // Skip further attributes between cfg(test) and the item.
            while j < tokens.len() && tokens[j].is_punct("#") {
                j = skip_attribute(tokens, j);
            }
            // Find the item's extent: first `{` at paren depth 0 opens the
            // body (match braces); a `;` first means a brace-less item.
            let mut paren = 0i64;
            let mut end = tokens.len();
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct("(") || t.is_punct("[") {
                    paren += 1;
                } else if t.is_punct(")") || t.is_punct("]") {
                    paren -= 1;
                } else if paren == 0 && t.is_punct(";") {
                    end = j + 1;
                    break;
                } else if paren == 0 && t.is_punct("{") {
                    end = matching_brace(tokens, j);
                    break;
                }
                j += 1;
            }
            for flag in in_test.iter_mut().take(end.min(tokens.len())).skip(i) {
                *flag = true;
            }
            i = end.max(i + 1);
        } else {
            i += 1;
        }
    }
    in_test
}

/// If `tokens[i..]` starts a `#[cfg(test)]` / `#![cfg(test)]` attribute,
/// returns the index just past its closing `]`.
fn match_cfg_test(tokens: &[Token], i: usize) -> Option<usize> {
    let mut j = i;
    if !tokens.get(j)?.is_punct("#") {
        return None;
    }
    j += 1;
    if tokens.get(j)?.is_punct("!") {
        j += 1;
    }
    if !tokens.get(j)?.is_punct("[") {
        return None;
    }
    j += 1;
    if !tokens.get(j)?.is_ident("cfg") {
        return None;
    }
    j += 1;
    if !tokens.get(j)?.is_punct("(") {
        return None;
    }
    j += 1;
    if !tokens.get(j)?.is_ident("test") {
        return None;
    }
    j += 1;
    if !tokens.get(j)?.is_punct(")") {
        return None;
    }
    j += 1;
    if !tokens.get(j)?.is_punct("]") {
        return None;
    }
    Some(j + 1)
}

/// Skips a `#[...]` attribute starting at `i` (which must be `#`), returning
/// the index past its closing `]`.
fn skip_attribute(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct("!")) {
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct("[")) {
        return j;
    }
    let mut depth = 0i64;
    while j < tokens.len() {
        if tokens[j].is_punct("[") {
            depth += 1;
        } else if tokens[j].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Index just past the `}` matching the `{` at `open`.
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].is_punct("{") {
            depth += 1;
        } else if tokens[j].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// For each code token, the innermost enclosing function's name token index
/// (`None` at module level). Closures inherit their enclosing `fn`.
pub(crate) fn enclosing_fn(tokens: &[Token]) -> Vec<Option<usize>> {
    let mut enclosing = vec![None; tokens.len()];
    let mut stack: Vec<(usize, i64)> = Vec::new(); // (name token idx, body depth)
    let mut pending: Option<usize> = None;
    let mut depth = 0i64;
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.is_ident("fn") {
            if let Some(next) = tokens.get(i + 1) {
                if next.kind == TokenKind::Ident {
                    pending = Some(i + 1);
                }
            }
        } else if t.is_punct("{") {
            depth += 1;
            if let Some(name) = pending.take() {
                stack.push((name, depth));
            }
        } else if t.is_punct("}") {
            if stack.last().is_some_and(|&(_, d)| d == depth) {
                stack.pop();
            }
            depth -= 1;
        } else if t.is_punct(";") && depth == stack.last().map_or(0, |&(_, d)| d) {
            // Trait method signature without a body.
            pending = None;
        }
        enclosing[i] = stack.last().map(|&(name, _)| name);
    }
    enclosing
}
