//! Token-sequence pattern rules: `no-unwrap`, `nondeterministic-rng`,
//! `thread-spawn`, `no-print-in-library`, `wallclock-in-sim`,
//! `dynamic-metric-name`.
//!
//! Each is a short adjacency pattern over the code token stream — e.g.
//! `.unwrap(` is the token triple `.` `unwrap` `(`. Because string and
//! comment contents are atomic tokens (or filtered out entirely), the
//! patterns cannot fire inside either; and because identifiers are exact
//! tokens, `unwrap_or()` or `should_panic(` can never be mistaken for a
//! violation the way substring matching allowed.

use super::{Context, Rule, Violation};
use crate::lexer::TokenKind;

/// Telemetry methods whose first argument names a metric or span. `count`
/// (the counter convenience on `Telemetry`) is deliberately absent: the
/// ident collides with `Iterator::count` and the index's `count(world, …)`,
/// and it delegates to `counter` inside the exempt telemetry crate anyway.
const METRIC_NAME_METHODS: [&str; 5] =
    ["counter", "gauge", "histogram", "latency_histogram", "span"];

/// Macro invocation delimiters: `panic!(…)`, `panic![…]`, `panic!{…}`.
fn is_macro_delim(ctx: &Context<'_>, i: usize) -> bool {
    ctx.tokens.get(i).is_some_and(|t| t.is_punct("(") || t.is_punct("[") || t.is_punct("{"))
}

pub(super) fn check(ctx: &Context<'_>, out: &mut Vec<Violation>) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        let in_test = ctx.in_test[i];

        // --- no-unwrap: `.unwrap(` / `.expect(` / `panic!(` ---------------
        if ctx.class.library && !in_test {
            if t.is_punct(".")
                && toks.get(i + 1).is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
                && toks.get(i + 2).is_some_and(|n| n.is_punct("("))
            {
                out.push(ctx.finding(Rule::NoUnwrap, &toks[i + 1]));
            }
            if t.is_ident("panic")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
                && is_macro_delim(ctx, i + 2)
            {
                out.push(ctx.finding(Rule::NoUnwrap, t));
            }
        }

        // --- nondeterministic-rng ------------------------------------------
        if ctx.class.simulation && !in_test {
            if (t.is_ident("thread_rng") || t.is_ident("from_entropy"))
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            {
                out.push(ctx.finding(Rule::NondeterministicRng, t));
            }
            if t.is_ident("rand")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && toks.get(i + 2).is_some_and(|n| n.is_ident("random"))
            {
                out.push(ctx.finding(Rule::NondeterministicRng, t));
            }
        }

        // --- thread-spawn --------------------------------------------------
        if ctx.class.thread_policed
            && !in_test
            && t.is_ident("thread")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("spawn"))
        {
            out.push(ctx.finding(Rule::ThreadSpawn, t));
        }

        // --- no-print-in-library -------------------------------------------
        if ctx.class.print_policed
            && !in_test
            && (t.is_ident("println")
                || t.is_ident("eprintln")
                || t.is_ident("print")
                || t.is_ident("eprint"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            && is_macro_delim(ctx, i + 2)
        {
            out.push(ctx.finding(Rule::NoPrintInLibrary, t));
        }

        // --- dynamic-metric-name -------------------------------------------
        // `.counter(x)` where `x` is not a string literal: the token after
        // the `(` must be a `Str`. The registry lookup methods on snapshots
        // share these names and are held to the same contract — a dynamic
        // lookup name is exactly as ungreppable as a dynamic definition.
        if ctx.class.metric_name_policed
            && !in_test
            && t.is_punct(".")
            && toks.get(i + 1).is_some_and(|n| METRIC_NAME_METHODS.iter().any(|m| n.is_ident(m)))
            && toks.get(i + 2).is_some_and(|n| n.is_punct("("))
            && toks.get(i + 3).is_some_and(|n| n.kind != TokenKind::Str)
        {
            out.push(ctx.finding(Rule::DynamicMetricName, &toks[i + 1]));
        }

        // --- wallclock-in-sim ----------------------------------------------
        if ctx.class.wallclock_policed
            && !in_test
            && (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("now"))
        {
            out.push(ctx.finding(Rule::WallclockInSim, t));
        }
    }
}
