//! `unjustified-allow`: `#[allow(...)]` / `#![allow(...)]` without a
//! justification comment on the same or the directly preceding line.
//!
//! Unlike the pattern rules this one consults the comment tokens: any
//! comment with substantive content (more than two characters beyond its
//! delimiters) on the attribute's line or the line above counts as the
//! justification. Applies everywhere, including `#[cfg(test)]` regions —
//! hygiene does not stop at test modules.

use super::{Context, Rule, Violation};
use crate::lexer::Token;

pub(super) fn check(ctx: &Context<'_>, comments: &[Token], out: &mut Vec<Violation>) {
    // Lines carrying a substantive comment (start line of the comment).
    let commented: Vec<usize> = comments
        .iter()
        .filter(|c| c.text.trim_matches(['/', '*', '!', ' ']).trim().len() > 2)
        .map(|c| c.line)
        .collect();

    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if !toks[i].is_punct("#") {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct("!")) {
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.is_punct("[")) {
            continue;
        }
        if !toks.get(j + 1).is_some_and(|t| t.is_ident("allow")) {
            continue;
        }
        if !toks.get(j + 2).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        let line = toks[i].line;
        let justified = commented.iter().any(|&c| c == line || c + 1 == line);
        if !justified {
            out.push(ctx.finding(Rule::UnjustifiedAllow, &toks[i]));
        }
    }
}
