//! The landing-page click log.
//!
//! Section 2.3 / 5.1: every ad creativity links to a distinct landing page
//! on the authors' web server; a click creates a log entry with a timestamp
//! and the client IP. To protect non-target users the IP is pseudonymised
//! with a secret-keyed hash before storage — the log can tell *distinct*
//! sources apart (upper-bounding distinct users) without storing addresses.

use serde::{Deserialize, Serialize};

/// A pseudonymised IP: the keyed hash of the original address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PseudonymizedIp(pub u64);

/// Keyed pseudonymisation: SipHash-like mixing of the address with a secret
/// key. Deterministic per key (the same source maps to the same pseudonym,
/// enabling distinct-count queries) and non-invertible without the key.
pub fn pseudonymize(ip: [u8; 4], secret_key: u64) -> PseudonymizedIp {
    let mut z = u64::from(u32::from_be_bytes(ip)) ^ secret_key;
    // splitmix64 finaliser rounds.
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    PseudonymizedIp(z)
}

/// One click-log record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClickRecord {
    /// Landing page hit (one per campaign creativity).
    pub landing_url: String,
    /// Active-time timestamp of the click, hours since campaign launch.
    pub timestamp_hours: f64,
    /// Pseudonymised source address.
    pub source: PseudonymizedIp,
}

/// The web server's click log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClickLog {
    records: Vec<ClickRecord>,
}

impl ClickLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a click. The raw IP never enters the log; only its keyed
    /// pseudonym is stored.
    pub fn record(&mut self, landing_url: &str, timestamp_hours: f64, ip: [u8; 4], key: u64) {
        self.records.push(ClickRecord {
            landing_url: landing_url.to_string(),
            timestamp_hours,
            source: pseudonymize(ip, key),
        });
    }

    /// All records for one landing page.
    pub fn for_landing(&self, landing_url: &str) -> Vec<&ClickRecord> {
        self.records.iter().filter(|r| r.landing_url == landing_url).collect()
    }

    /// Clicks on one landing page.
    pub fn click_count(&self, landing_url: &str) -> usize {
        self.for_landing(landing_url).len()
    }

    /// Distinct pseudonymised sources for one landing page — the paper's
    /// upper bound on distinct clicking users.
    pub fn unique_sources(&self, landing_url: &str) -> usize {
        let mut sources: Vec<PseudonymizedIp> =
            self.for_landing(landing_url).iter().map(|r| r.source).collect();
        sources.sort();
        sources.dedup();
        sources.len()
    }

    /// Total records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pseudonym_deterministic_per_key() {
        let ip = [192, 168, 1, 10];
        assert_eq!(pseudonymize(ip, 42), pseudonymize(ip, 42));
        assert_ne!(pseudonymize(ip, 42), pseudonymize(ip, 43));
    }

    #[test]
    fn distinct_ips_distinct_pseudonyms() {
        // No collisions among a few thousand realistic addresses.
        let mut seen = std::collections::HashSet::new();
        for a in 0..20u8 {
            for b in 0..20u8 {
                for c in 0..10u8 {
                    assert!(seen.insert(pseudonymize([10, a, b, c], 7)));
                }
            }
        }
    }

    #[test]
    fn raw_ip_not_recoverable_from_log() {
        let mut log = ClickLog::new();
        log.record("https://fdvt.example/c1", 1.5, [203, 0, 113, 7], 0x5EC2E7);
        let json = serde_json::to_string(&log).unwrap();
        assert!(!json.contains("203"));
    }

    #[test]
    fn per_landing_counts() {
        let mut log = ClickLog::new();
        let key = 99;
        log.record("lp1", 0.5, [1, 1, 1, 1], key);
        log.record("lp1", 1.0, [1, 1, 1, 1], key);
        log.record("lp1", 2.0, [2, 2, 2, 2], key);
        log.record("lp2", 3.0, [3, 3, 3, 3], key);
        assert_eq!(log.click_count("lp1"), 3);
        assert_eq!(log.unique_sources("lp1"), 2);
        assert_eq!(log.click_count("lp2"), 1);
        assert_eq!(log.click_count("lp3"), 0);
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn timestamps_preserved() {
        let mut log = ClickLog::new();
        log.record("lp", 12.25, [9, 9, 9, 9], 1);
        assert_eq!(log.for_landing("lp")[0].timestamp_hours, 12.25);
    }
}
