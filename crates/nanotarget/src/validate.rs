//! The three-signal success validation (Section 5.1).
//!
//! A campaign is validated as a successful nanotargeting attack only when
//! all three independent signals agree:
//!
//! 1. the FB dashboard reports exactly **one** user reached;
//! 2. the web server holds a click-log record from the target on the
//!    campaign's unique landing page;
//! 3. the target captured a "Why am I seeing this ad?" snapshot whose
//!    parameters match the configured audience exactly.
//!
//! A campaign that reached the target *along with others* is a failed
//! nanotargeting attempt by definition, however many impressions the target
//! received.

use fbsim_adplatform::campaign::CampaignSpec;
use fbsim_adplatform::delivery::DeliveryReport;
use fbsim_adplatform::transparency::WhyAmISeeingThis;
use fbsim_population::InterestCatalog;
use serde::{Deserialize, Serialize};

use crate::weblog::ClickLog;

/// The three validation signals for one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationSignals {
    /// Dashboard reports exactly one user reached.
    pub dashboard_reached_one: bool,
    /// The click log holds at least one record on the campaign's landing
    /// page.
    pub click_logged: bool,
    /// The transparency snapshot matches the configured audience.
    pub snapshot_matches: bool,
}

/// Verdict for one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NanotargetingVerdict {
    /// All three signals agree: the ad reached the target exclusively.
    Success,
    /// The ad reached the target but also other users.
    ReachedWithOthers,
    /// The target never received the ad.
    NotSeen,
}

/// Validates one campaign from its delivery report, the click log, and the
/// target's snapshot (if the target saw the ad).
pub fn validate_campaign(
    report: &DeliveryReport,
    spec: &CampaignSpec,
    catalog: &InterestCatalog,
    log: &ClickLog,
    snapshot: Option<&WhyAmISeeingThis>,
) -> (NanotargetingVerdict, ValidationSignals) {
    let signals = ValidationSignals {
        dashboard_reached_one: report.reached == 1 && report.target_seen,
        click_logged: log.click_count(&spec.creativity.landing_url) > 0,
        snapshot_matches: snapshot.is_some_and(|s| s.matches_spec(spec, catalog)),
    };
    let verdict = if !report.target_seen {
        NanotargetingVerdict::NotSeen
    } else if signals.dashboard_reached_one && signals.click_logged && signals.snapshot_matches {
        NanotargetingVerdict::Success
    } else if report.reached > 1 {
        NanotargetingVerdict::ReachedWithOthers
    } else {
        // Reached == 1 but a validation signal is missing: the conservative
        // reading is that exclusivity was not *proven*.
        NanotargetingVerdict::ReachedWithOthers
    };
    (verdict, signals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbsim_adplatform::campaign::{CampaignId, Creativity, Schedule};
    use fbsim_adplatform::targeting::TargetingSpec;
    use fbsim_population::{InterestId, WorldConfig};

    fn fixture() -> (InterestCatalog, CampaignSpec) {
        let catalog = InterestCatalog::generate(&WorldConfig::test_scale(1));
        let spec = CampaignSpec {
            name: "t".into(),
            targeting: TargetingSpec::builder()
                .worldwide()
                .interests((0..12).map(InterestId))
                .build()
                .unwrap(),
            creativity: Creativity {
                title: "User 1 — 12 interests".into(),
                landing_url: "https://fdvt.example/landing/u1/n12".into(),
            },
            daily_budget_eur: 10.0,
            schedule: Schedule::paper_experiment(),
        };
        (catalog, spec)
    }

    fn report(seen: bool, reached: u64) -> DeliveryReport {
        DeliveryReport {
            target_seen: seen,
            reached,
            impressions: reached,
            target_impressions: u64::from(seen),
            time_to_first_impression_hours: seen.then_some(2.5),
            cost_eur: 0.01,
            clicks: u64::from(seen),
            unique_click_ips: u64::from(seen),
        }
    }

    #[test]
    fn full_success() {
        let (catalog, spec) = fixture();
        let mut log = ClickLog::new();
        log.record(&spec.creativity.landing_url, 2.5, [10, 0, 0, 1], 7);
        let snapshot = WhyAmISeeingThis::for_campaign(CampaignId(0), &spec, &catalog);
        let (verdict, signals) =
            validate_campaign(&report(true, 1), &spec, &catalog, &log, Some(&snapshot));
        assert_eq!(verdict, NanotargetingVerdict::Success);
        assert!(signals.dashboard_reached_one);
        assert!(signals.click_logged);
        assert!(signals.snapshot_matches);
    }

    #[test]
    fn reached_with_others_is_failure() {
        let (catalog, spec) = fixture();
        let mut log = ClickLog::new();
        log.record(&spec.creativity.landing_url, 1.0, [10, 0, 0, 1], 7);
        let snapshot = WhyAmISeeingThis::for_campaign(CampaignId(0), &spec, &catalog);
        let (verdict, signals) =
            validate_campaign(&report(true, 152), &spec, &catalog, &log, Some(&snapshot));
        assert_eq!(verdict, NanotargetingVerdict::ReachedWithOthers);
        assert!(!signals.dashboard_reached_one);
    }

    #[test]
    fn not_seen() {
        let (catalog, spec) = fixture();
        let log = ClickLog::new();
        let (verdict, signals) =
            validate_campaign(&report(false, 9_824), &spec, &catalog, &log, None);
        assert_eq!(verdict, NanotargetingVerdict::NotSeen);
        assert!(!signals.click_logged);
        assert!(!signals.snapshot_matches);
    }

    #[test]
    fn missing_click_log_blocks_success() {
        let (catalog, spec) = fixture();
        let log = ClickLog::new();
        let snapshot = WhyAmISeeingThis::for_campaign(CampaignId(0), &spec, &catalog);
        let (verdict, _) =
            validate_campaign(&report(true, 1), &spec, &catalog, &log, Some(&snapshot));
        assert_ne!(verdict, NanotargetingVerdict::Success);
    }

    #[test]
    fn mismatched_snapshot_blocks_success() {
        let (catalog, spec) = fixture();
        let mut log = ClickLog::new();
        log.record(&spec.creativity.landing_url, 2.5, [10, 0, 0, 1], 7);
        let mut snapshot = WhyAmISeeingThis::for_campaign(CampaignId(0), &spec, &catalog);
        snapshot.interests.pop();
        let (verdict, signals) =
            validate_campaign(&report(true, 1), &spec, &catalog, &log, Some(&snapshot));
        assert_ne!(verdict, NanotargetingVerdict::Success);
        assert!(!signals.snapshot_matches);
    }
}
