//! §8.3 countermeasure evaluation.
//!
//! Replays the 21-campaign experiment plan under each proposed platform
//! policy and reports what gets blocked — in particular whether every
//! campaign that succeeded under the current policy would have been stopped.
//! Also evaluates the custom-audience padding bypass against the
//! active-audience rule.

use fbsim_adplatform::analyze::SpecAnalyzer;
use fbsim_adplatform::custom_audience::CustomAudience;
use fbsim_adplatform::policy::{
    CombinedPolicy, InterestCapPolicy, MinActiveAudiencePolicy, PlatformPolicy, StaticDecision,
};
use fbsim_adplatform::reach::{AdsManagerApi, ReportingEra};
use fbsim_population::World;
use serde::{Deserialize, Serialize};

use crate::experiment::ExperimentResult;
use crate::validate::NanotargetingVerdict;

/// Evaluation of one policy against the executed experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyEvaluation {
    /// Policy name.
    pub policy: String,
    /// Campaigns blocked at launch (out of 21).
    pub blocked: usize,
    /// Total campaigns evaluated.
    pub total: usize,
    /// Of the campaigns that *succeeded* under the current policy, how many
    /// this policy would have blocked.
    pub successes_blocked: usize,
    /// Successful campaigns under the current policy.
    pub successes_total: usize,
    /// Campaigns the static pre-flight decided (either way) without a
    /// reach-engine conjunction sweep.
    pub statically_decided: usize,
}

impl PolicyEvaluation {
    /// Whether the policy blocks every successful nanotargeting campaign.
    pub fn blocks_all_successes(&self) -> bool {
        self.successes_blocked == self.successes_total
    }
}

/// Replays the experiment's campaigns against a policy, returning the
/// evaluation together with the per-campaign blocked mask (plan order).
fn evaluate_policy_masked<P: PlatformPolicy>(
    world: &World,
    result: &ExperimentResult,
    policy: &P,
) -> (PolicyEvaluation, Vec<bool>) {
    let api = AdsManagerApi::new(world, ReportingEra::Post2018);
    let analyzer = SpecAnalyzer::from_engine(&world.reach_engine());
    let mut mask = Vec::with_capacity(result.rows.len());
    let mut blocked = 0;
    let mut successes_blocked = 0;
    let mut successes_total = 0;
    let mut statically_decided = 0;
    for (campaign, row) in result.plan.campaigns.iter().zip(&result.rows) {
        let analysis = analyzer.analyze_campaign(&campaign.spec);
        let is_blocked = match policy.evaluate_static(&campaign.spec, &analysis) {
            StaticDecision::Reject(_) => {
                statically_decided += 1;
                true
            }
            StaticDecision::Accept => {
                statically_decided += 1;
                false
            }
            StaticDecision::Inconclusive => {
                let true_reach = api.true_reach(&campaign.spec.targeting);
                policy.evaluate(&campaign.spec, true_reach).is_err()
            }
        };
        mask.push(is_blocked);
        if is_blocked {
            blocked += 1;
        }
        if row.verdict == NanotargetingVerdict::Success {
            successes_total += 1;
            if is_blocked {
                successes_blocked += 1;
            }
        }
    }
    let eval = PolicyEvaluation {
        policy: policy.name().to_string(),
        blocked,
        total: result.rows.len(),
        successes_blocked,
        successes_total,
        statically_decided,
    };
    (eval, mask)
}

/// Replays the experiment's campaigns against a policy.
///
/// Each campaign first goes through the policy's static pre-flight over
/// engine-exact marginals (see
/// [`SpecAnalyzer::from_engine`]); only
/// inconclusive campaigns pay for a true-audience conjunction sweep, exactly
/// as the [`CampaignManager`](fbsim_adplatform::CampaignManager) launch path
/// does.
pub fn evaluate_policy<P: PlatformPolicy>(
    world: &World,
    result: &ExperimentResult,
    policy: &P,
) -> PolicyEvaluation {
    evaluate_policy_masked(world, result, policy).0
}

/// The full §8.3 evaluation: both proposals separately and combined.
pub fn evaluate_all(world: &World, result: &ExperimentResult) -> Vec<PolicyEvaluation> {
    vec![
        evaluate_policy(world, result, &InterestCapPolicy::paper_proposal()),
        evaluate_policy(world, result, &MinActiveAudiencePolicy::paper_proposal()),
        evaluate_policy(world, result, &CombinedPolicy::paper_proposal()),
    ]
}

/// One policy evaluated against the isolated run and a contended run of the
/// same plan.
///
/// The §8.3 policies act at *launch*, on the campaign spec and its true
/// audience — inputs contention cannot touch — so the per-campaign blocked
/// mask is expected to be identical across runs (`blocked_set_changed ==
/// false`); this is the auditable statement that the proposed rules are
/// robust to market conditions. What contention does change is which
/// campaigns *succeed*, and hence how many of the blocked campaigns were
/// live threats (`successes_blocked`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyContentionContrast {
    /// Policy name.
    pub policy: String,
    /// Evaluation against the isolated run.
    pub isolated: PolicyEvaluation,
    /// Evaluation against the contended run.
    pub contended: PolicyEvaluation,
    /// Whether the per-campaign blocked mask differs between the runs.
    pub blocked_set_changed: bool,
    /// Whether the set of successful campaigns differs between the runs.
    pub success_set_changed: bool,
}

/// The §8.3 evaluation under contention: each policy against the isolated
/// baseline and a contended replay of the same plan, with the blocked-set
/// comparison feeding `table5_countermeasures`.
pub fn evaluate_all_under_contention(
    world: &World,
    isolated: &ExperimentResult,
    contended: &ExperimentResult,
) -> Vec<PolicyContentionContrast> {
    let success_set_changed = isolated.rows.iter().zip(&contended.rows).any(|(a, b)| {
        (a.verdict == NanotargetingVerdict::Success) != (b.verdict == NanotargetingVerdict::Success)
    });
    fn contrast<P: PlatformPolicy>(
        world: &World,
        isolated: &ExperimentResult,
        contended: &ExperimentResult,
        policy: &P,
        success_set_changed: bool,
    ) -> PolicyContentionContrast {
        let (iso_eval, iso_mask) = evaluate_policy_masked(world, isolated, policy);
        let (con_eval, con_mask) = evaluate_policy_masked(world, contended, policy);
        PolicyContentionContrast {
            policy: iso_eval.policy.clone(),
            blocked_set_changed: iso_mask != con_mask,
            success_set_changed,
            isolated: iso_eval,
            contended: con_eval,
        }
    }
    vec![
        contrast(
            world,
            isolated,
            contended,
            &InterestCapPolicy::paper_proposal(),
            success_set_changed,
        ),
        contrast(
            world,
            isolated,
            contended,
            &MinActiveAudiencePolicy::paper_proposal(),
            success_set_changed,
        ),
        contrast(
            world,
            isolated,
            contended,
            &CombinedPolicy::paper_proposal(),
            success_set_changed,
        ),
    ]
}

/// The custom-audience bypass under the active-audience rule: a 100-record
/// list padded with unreachable accounts reaches one person, which the
/// active-minimum policy rejects.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BypassEvaluation {
    /// Records in the uploaded list.
    pub list_size: usize,
    /// Accounts FB's current rule counts.
    pub matched: usize,
    /// Active accounts the §8.3 rule counts.
    pub active_matched: usize,
    /// Whether the current 100-record rule admits the audience.
    pub passes_current_rule: bool,
    /// Whether the §8.3 active-minimum (1,000) admits it.
    pub passes_active_minimum: bool,
}

/// Evaluates the single-target padding bypass.
pub fn evaluate_custom_audience_bypass() -> BypassEvaluation {
    let list = CustomAudience::bypass_list(0x7A26E7, 99);
    // lint:allow(no-unwrap) — invariant: the sweep only builds lists at or above the minimum
    let audience = CustomAudience::create(list, true).expect("list meets the current minimum");
    BypassEvaluation {
        list_size: audience.list_size(),
        matched: audience.matched(),
        active_matched: audience.active_matched(),
        passes_current_rule: audience.list_size() >= 100,
        passes_active_minimum: audience.active_matched() as u64
            >= MinActiveAudiencePolicy::paper_proposal().min_active,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_experiment, ExperimentConfig};
    use fbsim_population::{MaterializedUser, WorldConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    fn fixture() -> &'static (World, ExperimentResult) {
        static FIX: OnceLock<(World, ExperimentResult)> = OnceLock::new();
        FIX.get_or_init(|| {
            let world = World::generate(WorldConfig::test_scale(13)).unwrap();
            let mut rng = StdRng::seed_from_u64(99);
            let targets: Vec<MaterializedUser> = (0..3)
                .map(|_| world.materializer().sample_user_with_count(&mut rng, 120))
                .collect();
            let refs: Vec<&MaterializedUser> = targets.iter().collect();
            let result = run_experiment(&world, &refs, &ExperimentConfig::default()).unwrap();
            (world, result)
        })
    }

    #[test]
    fn interest_cap_blocks_all_deep_campaigns() {
        let (world, result) = fixture();
        let eval = evaluate_policy(world, result, &InterestCapPolicy::paper_proposal());
        // 12, 18, 20, 22 and 9-interest campaigns exceed the cap of 8:
        // 5 sizes × 3 users = 15 blocked.
        assert_eq!(eval.blocked, 15);
        assert!(eval.blocks_all_successes());
        // The cap is a purely static rule: no campaign needs the engine.
        assert_eq!(eval.statically_decided, eval.total);
    }

    #[test]
    fn min_audience_blocks_all_successes() {
        let (world, result) = fixture();
        let eval = evaluate_policy(world, result, &MinActiveAudiencePolicy::paper_proposal());
        assert!(eval.blocks_all_successes(), "{eval:?}");
        // Broad 5-interest campaigns stay allowed.
        assert!(eval.blocked < eval.total, "{eval:?}");
    }

    #[test]
    fn combined_blocks_everything_either_blocks() {
        let (world, result) = fixture();
        let evals = evaluate_all(world, result);
        assert_eq!(evals.len(), 3);
        let combined = &evals[2];
        assert!(combined.blocked >= evals[0].blocked.max(evals[1].blocked));
        assert!(combined.blocks_all_successes());
    }

    #[test]
    fn contention_never_changes_the_blocked_set() {
        // §8.3 policies act on the spec and its true audience at launch,
        // which contention cannot touch: the blocked set must be invariant
        // even when contention changes which campaigns succeed.
        let (world, result) = fixture();
        let mut rng = StdRng::seed_from_u64(99);
        let targets: Vec<MaterializedUser> =
            (0..3).map(|_| world.materializer().sample_user_with_count(&mut rng, 120)).collect();
        let refs: Vec<&MaterializedUser> = targets.iter().collect();
        let sweep = crate::contention::run_contention_sweep(
            world,
            &refs,
            &ExperimentConfig::default(),
            2021,
            &[64],
        )
        .unwrap();
        let contrasts = evaluate_all_under_contention(world, result, &sweep.results[0]);
        assert_eq!(contrasts.len(), 3);
        for c in &contrasts {
            assert!(!c.blocked_set_changed, "{}: blocked set changed under contention", c.policy);
            assert_eq!(c.isolated.blocked, c.contended.blocked);
            // Whatever still succeeds under contention stays fully covered
            // by the combined proposal.
            if c.policy == contrasts[2].policy {
                assert!(c.contended.blocks_all_successes(), "{c:?}");
            }
        }
    }

    #[test]
    fn bypass_caught_only_by_active_rule() {
        let eval = evaluate_custom_audience_bypass();
        assert!(eval.passes_current_rule);
        assert!(!eval.passes_active_minimum);
        assert_eq!(eval.active_matched, 1);
        assert_eq!(eval.matched, 100);
    }
}
