//! §8.3 countermeasure evaluation.
//!
//! Replays the 21-campaign experiment plan under each proposed platform
//! policy and reports what gets blocked — in particular whether every
//! campaign that succeeded under the current policy would have been stopped.
//! Also evaluates the custom-audience padding bypass against the
//! active-audience rule.

use fbsim_adplatform::analyze::SpecAnalyzer;
use fbsim_adplatform::custom_audience::CustomAudience;
use fbsim_adplatform::policy::{
    CombinedPolicy, InterestCapPolicy, MinActiveAudiencePolicy, PlatformPolicy, StaticDecision,
};
use fbsim_adplatform::reach::{AdsManagerApi, ReportingEra};
use fbsim_population::World;
use serde::{Deserialize, Serialize};

use crate::experiment::ExperimentResult;
use crate::validate::NanotargetingVerdict;

/// Evaluation of one policy against the executed experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyEvaluation {
    /// Policy name.
    pub policy: String,
    /// Campaigns blocked at launch (out of 21).
    pub blocked: usize,
    /// Total campaigns evaluated.
    pub total: usize,
    /// Of the campaigns that *succeeded* under the current policy, how many
    /// this policy would have blocked.
    pub successes_blocked: usize,
    /// Successful campaigns under the current policy.
    pub successes_total: usize,
    /// Campaigns the static pre-flight decided (either way) without a
    /// reach-engine conjunction sweep.
    pub statically_decided: usize,
}

impl PolicyEvaluation {
    /// Whether the policy blocks every successful nanotargeting campaign.
    pub fn blocks_all_successes(&self) -> bool {
        self.successes_blocked == self.successes_total
    }
}

/// Replays the experiment's campaigns against a policy.
///
/// Each campaign first goes through the policy's static pre-flight over
/// engine-exact marginals (see
/// [`SpecAnalyzer::from_engine`]); only
/// inconclusive campaigns pay for a true-audience conjunction sweep, exactly
/// as the [`CampaignManager`](fbsim_adplatform::CampaignManager) launch path
/// does.
pub fn evaluate_policy<P: PlatformPolicy>(
    world: &World,
    result: &ExperimentResult,
    policy: &P,
) -> PolicyEvaluation {
    let api = AdsManagerApi::new(world, ReportingEra::Post2018);
    let analyzer = SpecAnalyzer::from_engine(&world.reach_engine());
    let mut blocked = 0;
    let mut successes_blocked = 0;
    let mut successes_total = 0;
    let mut statically_decided = 0;
    for (campaign, row) in result.plan.campaigns.iter().zip(&result.rows) {
        let analysis = analyzer.analyze_campaign(&campaign.spec);
        let is_blocked = match policy.evaluate_static(&campaign.spec, &analysis) {
            StaticDecision::Reject(_) => {
                statically_decided += 1;
                true
            }
            StaticDecision::Accept => {
                statically_decided += 1;
                false
            }
            StaticDecision::Inconclusive => {
                let true_reach = api.true_reach(&campaign.spec.targeting);
                policy.evaluate(&campaign.spec, true_reach).is_err()
            }
        };
        if is_blocked {
            blocked += 1;
        }
        if row.verdict == NanotargetingVerdict::Success {
            successes_total += 1;
            if is_blocked {
                successes_blocked += 1;
            }
        }
    }
    PolicyEvaluation {
        policy: policy.name().to_string(),
        blocked,
        total: result.rows.len(),
        successes_blocked,
        successes_total,
        statically_decided,
    }
}

/// The full §8.3 evaluation: both proposals separately and combined.
pub fn evaluate_all(world: &World, result: &ExperimentResult) -> Vec<PolicyEvaluation> {
    vec![
        evaluate_policy(world, result, &InterestCapPolicy::paper_proposal()),
        evaluate_policy(world, result, &MinActiveAudiencePolicy::paper_proposal()),
        evaluate_policy(world, result, &CombinedPolicy::paper_proposal()),
    ]
}

/// The custom-audience bypass under the active-audience rule: a 100-record
/// list padded with unreachable accounts reaches one person, which the
/// active-minimum policy rejects.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BypassEvaluation {
    /// Records in the uploaded list.
    pub list_size: usize,
    /// Accounts FB's current rule counts.
    pub matched: usize,
    /// Active accounts the §8.3 rule counts.
    pub active_matched: usize,
    /// Whether the current 100-record rule admits the audience.
    pub passes_current_rule: bool,
    /// Whether the §8.3 active-minimum (1,000) admits it.
    pub passes_active_minimum: bool,
}

/// Evaluates the single-target padding bypass.
pub fn evaluate_custom_audience_bypass() -> BypassEvaluation {
    let list = CustomAudience::bypass_list(0x7A26E7, 99);
    // lint:allow(no-unwrap) — invariant: the sweep only builds lists at or above the minimum
    let audience = CustomAudience::create(list, true).expect("list meets the current minimum");
    BypassEvaluation {
        list_size: audience.list_size(),
        matched: audience.matched(),
        active_matched: audience.active_matched(),
        passes_current_rule: audience.list_size() >= 100,
        passes_active_minimum: audience.active_matched() as u64
            >= MinActiveAudiencePolicy::paper_proposal().min_active,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_experiment, ExperimentConfig};
    use fbsim_population::{MaterializedUser, WorldConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    fn fixture() -> &'static (World, ExperimentResult) {
        static FIX: OnceLock<(World, ExperimentResult)> = OnceLock::new();
        FIX.get_or_init(|| {
            let world = World::generate(WorldConfig::test_scale(13)).unwrap();
            let mut rng = StdRng::seed_from_u64(99);
            let targets: Vec<MaterializedUser> = (0..3)
                .map(|_| world.materializer().sample_user_with_count(&mut rng, 120))
                .collect();
            let refs: Vec<&MaterializedUser> = targets.iter().collect();
            let result = run_experiment(&world, &refs, &ExperimentConfig::default()).unwrap();
            (world, result)
        })
    }

    #[test]
    fn interest_cap_blocks_all_deep_campaigns() {
        let (world, result) = fixture();
        let eval = evaluate_policy(world, result, &InterestCapPolicy::paper_proposal());
        // 12, 18, 20, 22 and 9-interest campaigns exceed the cap of 8:
        // 5 sizes × 3 users = 15 blocked.
        assert_eq!(eval.blocked, 15);
        assert!(eval.blocks_all_successes());
        // The cap is a purely static rule: no campaign needs the engine.
        assert_eq!(eval.statically_decided, eval.total);
    }

    #[test]
    fn min_audience_blocks_all_successes() {
        let (world, result) = fixture();
        let eval = evaluate_policy(world, result, &MinActiveAudiencePolicy::paper_proposal());
        assert!(eval.blocks_all_successes(), "{eval:?}");
        // Broad 5-interest campaigns stay allowed.
        assert!(eval.blocked < eval.total, "{eval:?}");
    }

    #[test]
    fn combined_blocks_everything_either_blocks() {
        let (world, result) = fixture();
        let evals = evaluate_all(world, result);
        assert_eq!(evals.len(), 3);
        let combined = &evals[2];
        assert!(combined.blocked >= evals[0].blocked.max(evals[1].blocked));
        assert!(combined.blocks_all_successes());
    }

    #[test]
    fn bypass_caught_only_by_active_rule() {
        let eval = evaluate_custom_audience_bypass();
        assert!(eval.passes_current_rule);
        assert!(!eval.passes_active_minimum);
        assert_eq!(eval.active_matched, 1);
        assert_eq!(eval.matched, 100);
    }
}
