//! Running the 21-campaign experiment — Table 2.

use fbsim_adplatform::campaign::{CampaignId, CampaignManager};
use fbsim_adplatform::delivery::{DeliveryModel, ImpressionMarket};
use fbsim_adplatform::policy::CurrentFbPolicy;
use fbsim_adplatform::reach::{AdsManagerApi, ReportingEra};
use fbsim_adplatform::transparency::WhyAmISeeingThis;
use fbsim_population::{MaterializedUser, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::plan::{CampaignPlan, ExperimentPlan, PlanError};
use crate::validate::{validate_campaign, NanotargetingVerdict, ValidationSignals};
use crate::weblog::ClickLog;

/// Experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Master seed (plan randomisation, delivery, click IPs).
    pub seed: u64,
    /// Secret key for IP pseudonymisation in the click log.
    pub ip_secret_key: u64,
    /// Delivery-model constants.
    pub delivery: DeliveryModel,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self { seed: 20_201_029, ip_secret_key: 0x5EC2E7, delivery: DeliveryModel::default() }
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Target user (0-based).
    pub user_index: usize,
    /// Interests in the campaign.
    pub interest_count: usize,
    /// "Seen": the target received the ad.
    pub seen: bool,
    /// "Reached": unique users reached.
    pub reached: u64,
    /// "Impressions": total impressions delivered.
    pub impressions: u64,
    /// "TFI": time to the target's first impression, active hours.
    pub tfi_hours: Option<f64>,
    /// "Cost": euros billed (0.0 renders as "Free").
    pub cost_eur: f64,
    /// "Clicks": total clicks.
    pub clicks: u64,
    /// Unique pseudonymised IPs among the clicks (parenthesised in the
    /// paper's table).
    pub unique_click_ips: u64,
    /// The three validation signals.
    pub signals: ValidationSignals,
    /// Final verdict.
    pub verdict: NanotargetingVerdict,
}

impl Table2Row {
    /// Formats the TFI like the paper ("2h 11'", "47'", or "-").
    pub fn tfi_display(&self) -> String {
        match self.tfi_hours {
            None => "-".to_string(),
            Some(t) => {
                let hours = t.floor() as u64;
                let minutes = ((t - hours as f64) * 60.0).round() as u64;
                if hours == 0 {
                    format!("{minutes}'")
                } else {
                    format!("{hours}h {minutes}'")
                }
            }
        }
    }

    /// Formats the cost ("Free" below one cent, like FB's billing).
    pub fn cost_display(&self) -> String {
        if self.cost_eur < 0.005 {
            "Free".to_string()
        } else {
            format!("\u{20ac}{:.2}", self.cost_eur)
        }
    }
}

/// The full experiment outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// The plan that was executed.
    pub plan: ExperimentPlan,
    /// One row per campaign, in plan order.
    pub rows: Vec<Table2Row>,
    /// The shared click log across all landing pages.
    pub click_log: ClickLog,
}

impl ExperimentResult {
    /// Campaigns that successfully nanotargeted their user.
    pub fn successes(&self) -> Vec<&Table2Row> {
        self.rows.iter().filter(|r| r.verdict == NanotargetingVerdict::Success).collect()
    }

    /// Total experiment cost in euros.
    pub fn total_cost(&self) -> f64 {
        self.rows.iter().map(|r| r.cost_eur).sum()
    }

    /// Cost of the successful campaigns only (the paper: €0.12 overall).
    pub fn success_cost(&self) -> f64 {
        self.successes().iter().map(|r| r.cost_eur).sum()
    }

    /// Renders the paper's Table 2 layout, one block per user.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let users: Vec<usize> = {
            let mut u: Vec<usize> = self.rows.iter().map(|r| r.user_index).collect();
            u.sort_unstable();
            u.dedup();
            u
        };
        for user in users {
            out.push_str(&format!("User {}\n", user + 1));
            out.push_str("interests | Seen | Reached | Impressions | TFI | Cost | Clicks\n");
            for row in self.rows.iter().filter(|r| r.user_index == user) {
                let star = if row.verdict == NanotargetingVerdict::Success { " *" } else { "" };
                out.push_str(&format!(
                    "{:>9} | {:>4} | {:>7} | {:>11} | {:>8} | {:>7} | {} ({}){star}\n",
                    row.interest_count,
                    if row.seen { "Yes" } else { "No" },
                    row.reached,
                    row.impressions,
                    row.tfi_display(),
                    row.cost_display(),
                    row.clicks,
                    row.unique_click_ips,
                ));
            }
            out.push('\n');
        }
        out.push_str("* = successful nanotargeting (ad delivered exclusively to the target)\n");
        out
    }
}

/// Runs the full experiment against a world with isolated (market-free)
/// pricing, exactly as the paper's campaigns were priced in the original
/// model.
///
/// # Errors
///
/// Fails if a target has fewer than 22 interests.
pub fn run_experiment(
    world: &World,
    targets: &[&MaterializedUser],
    config: &ExperimentConfig,
) -> Result<ExperimentResult, PlanError> {
    run_experiment_in(world, targets, config, None)
}

/// Runs the full experiment with impressions resolved through a marketplace
/// (`None` reproduces [`run_experiment`] bit-for-bit — the zero-competition
/// contract).
///
/// # Errors
///
/// Fails if a target has fewer than 22 interests.
pub fn run_experiment_in(
    world: &World,
    targets: &[&MaterializedUser],
    config: &ExperimentConfig,
    market: Option<&dyn ImpressionMarket>,
) -> Result<ExperimentResult, PlanError> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7A26E7);
    let plan = {
        let _span = uof_telemetry::span!("nanotarget.plan", targets = targets.len());
        ExperimentPlan::build(targets, &mut rng)?
    };
    // The experiment ran in late 2020: the Post2018 reporting era (the floor
    // does not matter for delivery, only for what the advertiser sees).
    let api = AdsManagerApi::new(world, ReportingEra::Post2018);
    let mut manager = CampaignManager::new(api, CurrentFbPolicy, config.delivery.clone());
    let mut click_log = ClickLog::new();
    let mut rows = Vec::with_capacity(plan.campaigns.len());

    for campaign in &plan.campaigns {
        let _campaign_span = uof_telemetry::span!(
            "nanotarget.campaign",
            user = campaign.user_index,
            interests = campaign.interest_count,
        );
        let (id, report) = {
            let _span = uof_telemetry::span!("nanotarget.launch");
            let id = manager
                .launch_in_market(&mut rng, campaign.spec.clone(), true, market)
                // lint:allow(no-unwrap) — invariant: CurrentFbPolicy accepts every spec by definition
                .expect("CurrentFbPolicy never rejects");
            // lint:allow(no-unwrap) — invariant: the campaign was launched two lines above
            let report = manager.dashboard(id).expect("active campaign has a report").clone();
            (id, report)
        };
        {
            let _span = uof_telemetry::span!("nanotarget.simulate_clicks");
            simulate_clicks(&mut click_log, campaign, &report, config, &mut rng);
        }
        let _span = uof_telemetry::span!("nanotarget.validate");
        let snapshot = report
            .target_seen
            .then(|| WhyAmISeeingThis::for_campaign(id, &campaign.spec, world.catalog()));
        let (verdict, signals) = validate_campaign(
            &report,
            &campaign.spec,
            world.catalog(),
            &click_log,
            snapshot.as_ref(),
        );
        manager.stop(id);
        drop(_span);
        rows.push(Table2Row {
            user_index: campaign.user_index,
            interest_count: campaign.interest_count,
            seen: report.target_seen,
            reached: report.reached,
            impressions: report.impressions,
            tfi_hours: report.time_to_first_impression_hours,
            cost_eur: report.cost_eur,
            clicks: report.clicks,
            unique_click_ips: report.unique_click_ips,
            signals,
            verdict,
        });
    }
    // Stop ids exist implicitly; keep the manager's final state out of the
    // result (the rows carry everything Table 2 needs).
    let _ = CampaignId(0);
    Ok(ExperimentResult { plan, rows, click_log })
}

/// Materialises the click log entries implied by a delivery report: the
/// target clicks every impression they received (experiment protocol, from
/// their own IPs), background clickers hit the landing page once each.
fn simulate_clicks(
    log: &mut ClickLog,
    campaign: &CampaignPlan,
    report: &fbsim_adplatform::delivery::DeliveryReport,
    config: &ExperimentConfig,
    rng: &mut StdRng,
) {
    let url = &campaign.spec.creativity.landing_url;
    // Target clicks: first at the TFI, later ones spread over the campaign.
    if report.target_seen {
        let tfi = report.time_to_first_impression_hours.unwrap_or(0.0);
        let target_ip = [10, 0, campaign.user_index as u8 + 1, 1];
        for k in 0..report.target_impressions {
            let t = if k == 0 { tfi } else { tfi + rng.gen::<f64>() * (33.0 - tfi).max(0.1) };
            log.record(url, t, target_ip, config.ip_secret_key);
        }
    }
    // Background clicks from distinct random IPs.
    let background = report.clicks.saturating_sub(report.target_impressions);
    for _ in 0..background {
        let ip = [rng.gen::<u8>() | 1, rng.gen(), rng.gen(), rng.gen()];
        log.record(url, rng.gen::<f64>() * 33.0, ip, config.ip_secret_key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbsim_population::WorldConfig;
    use std::sync::OnceLock;

    fn result() -> &'static ExperimentResult {
        static RESULT: OnceLock<ExperimentResult> = OnceLock::new();
        RESULT.get_or_init(|| {
            let world = World::generate(WorldConfig::test_scale(13)).unwrap();
            let mut rng = StdRng::seed_from_u64(99);
            let targets: Vec<MaterializedUser> = (0..3)
                .map(|_| world.materializer().sample_user_with_count(&mut rng, 120))
                .collect();
            let refs: Vec<&MaterializedUser> = targets.iter().collect();
            run_experiment(&world, &refs, &ExperimentConfig::default()).unwrap()
        })
    }

    #[test]
    fn twenty_one_rows() {
        assert_eq!(result().rows.len(), 21);
    }

    #[test]
    fn reached_decreases_with_interest_count() {
        // Within each user, more interests → (weakly) fewer users reached,
        // comparing the extremes which are orders of magnitude apart.
        for user in 0..3 {
            let rows: Vec<&Table2Row> =
                result().rows.iter().filter(|r| r.user_index == user).collect();
            let at5 = rows.iter().find(|r| r.interest_count == 5).unwrap().reached;
            let at22 = rows.iter().find(|r| r.interest_count == 22).unwrap().reached;
            assert!(at22 <= at5, "user {user}: reached(22)={at22} > reached(5)={at5}");
        }
    }

    #[test]
    fn success_group_dominates_successes() {
        let successes = result().successes();
        assert!(!successes.is_empty(), "expected some successful nanotargeting");
        // Scale-independent shape: success requires many interests (the
        // paper's cutoff of 12+ holds at paper scale; the 100× smaller test
        // world shifts it slightly lower) and the Success Group out-succeeds
        // the Failure Group.
        for s in &successes {
            assert!(s.interest_count >= 9, "success at {} interests", s.interest_count);
        }
        let in_success_group = successes.iter().filter(|s| s.interest_count >= 12).count();
        assert!(in_success_group * 2 >= successes.len());
    }

    #[test]
    fn successes_are_cheap() {
        // Paper: overall cost of the 9 successful campaigns was €0.12.
        let cost = result().success_cost();
        let n = result().successes().len() as f64;
        assert!(cost <= 0.2 * n, "successes cost {cost} for {n} campaigns");
    }

    #[test]
    fn successful_rows_have_all_signals() {
        for row in result().successes() {
            assert!(row.signals.dashboard_reached_one);
            assert!(row.signals.click_logged);
            assert!(row.signals.snapshot_matches);
            assert_eq!(row.reached, 1);
            assert!(row.seen);
        }
    }

    #[test]
    fn click_log_covers_every_seen_campaign() {
        let r = result();
        for (campaign, row) in r.plan.campaigns.iter().zip(&r.rows) {
            if row.seen {
                assert!(
                    r.click_log.click_count(&campaign.spec.creativity.landing_url) > 0,
                    "seen campaign without click log entry"
                );
            }
        }
    }

    #[test]
    fn render_contains_all_users_and_marker() {
        let text = result().render();
        assert!(text.contains("User 1"));
        assert!(text.contains("User 3"));
        assert!(text.contains("successful nanotargeting"));
    }

    #[test]
    fn tfi_and_cost_formatting() {
        let row = Table2Row {
            user_index: 0,
            interest_count: 20,
            seen: true,
            reached: 1,
            impressions: 1,
            tfi_hours: Some(2.1833),
            cost_eur: 0.0,
            clicks: 1,
            unique_click_ips: 1,
            signals: ValidationSignals {
                dashboard_reached_one: true,
                click_logged: true,
                snapshot_matches: true,
            },
            verdict: NanotargetingVerdict::Success,
        };
        assert_eq!(row.tfi_display(), "2h 11'");
        assert_eq!(row.cost_display(), "Free");
        let row2 = Table2Row { tfi_hours: Some(0.7833), cost_eur: 0.01, ..row };
        assert_eq!(row2.tfi_display(), "47'");
        assert_eq!(row2.cost_display(), "€0.01");
        let row3 = Table2Row { tfi_hours: None, cost_eur: 28.58, ..row2 };
        assert_eq!(row3.tfi_display(), "-");
        assert_eq!(row3.cost_display(), "€28.58");
    }

    #[test]
    fn deterministic_for_seed() {
        let world = World::generate(WorldConfig::test_scale(13)).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let targets: Vec<MaterializedUser> =
            (0..3).map(|_| world.materializer().sample_user_with_count(&mut rng, 120)).collect();
        let refs: Vec<&MaterializedUser> = targets.iter().collect();
        let a = run_experiment(&world, &refs, &ExperimentConfig::default()).unwrap();
        let b = run_experiment(&world, &refs, &ExperimentConfig::default()).unwrap();
        assert_eq!(a.rows, b.rows);
    }
}
