//! Korolova-style attribute inference (§7.2.1).
//!
//! Korolova (2010) showed that once an audience pins down a single person,
//! the ad platform becomes an *oracle for their private attributes*: launch
//! one campaign per candidate value of an attribute (say, each age), each
//! refining the pinning audience with that value — only the campaign whose
//! value matches the target delivers impressions. Facebook's 20-user
//! minimum was introduced in response and, as this paper shows, is no
//! longer in force. This module reproduces the attack against the simulated
//! platform so the countermeasures can be tested against it too.

use fbsim_adplatform::campaign::{CampaignManager, CampaignSpec, Creativity, Schedule};
use fbsim_adplatform::policy::PlatformPolicy;
use fbsim_adplatform::targeting::TargetingSpec;
use fbsim_population::{InterestId, MaterializedUser};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One probe campaign of the inference attack.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbeOutcome {
    /// The candidate age range probed.
    pub age_range: (u8, u8),
    /// Whether the probe delivered any impressions to the pinned target.
    pub delivered: bool,
    /// Whether the platform's policy rejected the probe at launch.
    pub rejected: bool,
}

/// Result of an age-inference attack.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InferenceResult {
    /// All probes, in candidate order.
    pub probes: Vec<ProbeOutcome>,
    /// The inferred age range, when exactly one probe delivered.
    pub inferred: Option<(u8, u8)>,
    /// Probes the platform blocked.
    pub blocked: usize,
}

/// The age bands the attacker sweeps (coarse first — a real attacker would
/// then bisect, but bands demonstrate the oracle).
pub const AGE_PROBES: [(u8, u8); 4] = [(13, 19), (20, 39), (40, 64), (65, 65)];

/// Runs the age-inference attack: a pinning interest set (enough interests
/// to make the target unique) is combined with each candidate age range;
/// the range whose campaign delivers is the target's age band.
///
/// `target_age_band` is the simulation's ground truth: the probe matching
/// it is the one whose audience contains the target.
pub fn infer_age_band<P: PlatformPolicy, R: Rng + ?Sized>(
    manager: &mut CampaignManager<'_, P>,
    rng: &mut R,
    pinning_interests: &[InterestId],
    target_age_band: (u8, u8),
) -> InferenceResult {
    let mut probes = Vec::with_capacity(AGE_PROBES.len());
    let mut blocked = 0;
    for (lo, hi) in AGE_PROBES {
        let spec = CampaignSpec {
            name: format!("age probe {lo}-{hi}"),
            targeting: TargetingSpec::builder()
                .worldwide()
                .interests(pinning_interests.iter().copied())
                .age_range(lo, hi)
                .build()
                // lint:allow(no-unwrap) — invariant: probes use at most MAX_INTERESTS interests
                .expect("probe spec within limits"),
            creativity: Creativity {
                title: format!("probe {lo}-{hi}"),
                landing_url: format!("https://attacker.example/probe/{lo}-{hi}"),
            },
            daily_budget_eur: 1.0,
            schedule: Schedule::paper_experiment(),
        };
        // The target matches a probe only when the probed band is theirs.
        let target_matches = (lo, hi) == target_age_band;
        match manager.launch(rng, spec, target_matches) {
            Err(_) => {
                blocked += 1;
                probes.push(ProbeOutcome { age_range: (lo, hi), delivered: false, rejected: true });
            }
            Ok(id) => {
                // lint:allow(no-unwrap) — invariant: the probe campaign was accepted just above
                let report = manager.dashboard(id).expect("launched probes deliver");
                probes.push(ProbeOutcome {
                    age_range: (lo, hi),
                    delivered: report.target_seen,
                    rejected: false,
                });
            }
        }
    }
    let delivering: Vec<(u8, u8)> =
        probes.iter().filter(|p| p.delivered).map(|p| p.age_range).collect();
    InferenceResult { inferred: (delivering.len() == 1).then(|| delivering[0]), probes, blocked }
}

/// Picks a pinning interest set for a target: their least popular interests
/// up to `n` — the strongest identifier per §4.3.1.
pub fn pinning_set(
    target: &MaterializedUser,
    catalog: &fbsim_population::InterestCatalog,
    n: usize,
) -> Vec<InterestId> {
    target.interests_by_audience(catalog).into_iter().take(n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbsim_adplatform::delivery::DeliveryModel;
    use fbsim_adplatform::policy::{CurrentFbPolicy, MinActiveAudiencePolicy};
    use fbsim_adplatform::reach::{AdsManagerApi, ReportingEra};
    use fbsim_population::{World, WorldConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    fn world() -> &'static World {
        static WORLD: OnceLock<World> = OnceLock::new();
        WORLD.get_or_init(|| World::generate(WorldConfig::test_scale(66)).unwrap())
    }

    fn target() -> MaterializedUser {
        let mut rng = StdRng::seed_from_u64(12);
        world().materializer().sample_user_with_count(&mut rng, 120)
    }

    /// Delivery model with spillover pinned off so the oracle is clean.
    fn model() -> DeliveryModel {
        DeliveryModel { narrow_expansion_rate: 0.0, ..DeliveryModel::default() }
    }

    #[test]
    fn age_oracle_reveals_the_band_under_current_policy() {
        let target = target();
        let pins = pinning_set(&target, world().catalog(), 8);
        let api = AdsManagerApi::new(world(), ReportingEra::Post2018);
        let mut manager = CampaignManager::new(api, CurrentFbPolicy, model());
        let mut hits = 0;
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let result = infer_age_band(&mut manager, &mut rng, &pins, (20, 39));
            assert_eq!(result.blocked, 0);
            if result.inferred == Some((20, 39)) {
                hits += 1;
            }
            // Never infer a WRONG band: the only delivering probe, if any,
            // is the true one.
            for p in &result.probes {
                if p.delivered {
                    assert_eq!(p.age_range, (20, 39));
                }
            }
        }
        // The target sees the matching probe in most runs.
        assert!(hits >= 7, "only {hits}/10 inferences succeeded");
    }

    #[test]
    fn min_audience_policy_blocks_the_oracle() {
        let target = target();
        let pins = pinning_set(&target, world().catalog(), 8);
        let api = AdsManagerApi::new(world(), ReportingEra::Post2018);
        let mut manager =
            CampaignManager::new(api, MinActiveAudiencePolicy::paper_proposal(), model());
        let mut rng = StdRng::seed_from_u64(3);
        let result = infer_age_band(&mut manager, &mut rng, &pins, (20, 39));
        // Every probe audience is ~1 user, far below 1,000: all blocked.
        assert_eq!(result.blocked, AGE_PROBES.len());
        assert_eq!(result.inferred, None);
    }

    #[test]
    fn pinning_set_is_least_popular_prefix() {
        let target = target();
        let pins = pinning_set(&target, world().catalog(), 5);
        assert_eq!(pins.len(), 5);
        let sorted = target.interests_by_audience(world().catalog());
        assert_eq!(pins, sorted[..5].to_vec());
    }
}
