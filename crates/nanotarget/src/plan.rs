//! The experiment plan (Section 5.1).
//!
//! Three target users (in the paper: three authors, aware and consenting —
//! here: three simulated cohort users designated as targets), each with 7
//! campaigns over nested random interest sets of sizes 5, 7, 9, 12, 18, 20
//! and 22. Sets are nested downward from 22 (drop 2 → 20, drop 2 → 18,
//! drop 6 → 12, …), every campaign gets its own ad creativity identifying
//! `(user, interest count)` and its own landing page.

use fbsim_adplatform::campaign::{CampaignSpec, Creativity, Schedule};
use fbsim_adplatform::targeting::TargetingSpec;
use fbsim_population::{InterestId, MaterializedUser};
use rand::Rng;
use serde::{Deserialize, Serialize};
use uniqueness::selection::{experiment_nested_sets, EXPERIMENT_SIZES};

/// The Success Group sizes (expected success probability 50–90%).
pub const SUCCESS_GROUP: [usize; 4] = [12, 18, 20, 22];
/// The Failure Group sizes (expected success probability 2.5–30%).
pub const FAILURE_GROUP: [usize; 3] = [5, 7, 9];

/// One planned campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignPlan {
    /// Target user index (0-based; the paper labels them User 1–3).
    pub user_index: usize,
    /// Number of interests in the audience.
    pub interest_count: usize,
    /// The nested interest set.
    pub interests: Vec<InterestId>,
    /// The full campaign spec, ready to launch.
    pub spec: CampaignSpec,
}

impl CampaignPlan {
    /// Whether the plan belongs to the Success Group.
    pub fn in_success_group(&self) -> bool {
        SUCCESS_GROUP.contains(&self.interest_count)
    }
}

/// The full 21-campaign plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentPlan {
    /// All planned campaigns (3 users × 7 sizes).
    pub campaigns: Vec<CampaignPlan>,
}

/// Errors building a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A target user has fewer than 22 interests, so the nested sets cannot
    /// be formed.
    TargetTooFewInterests {
        /// Index of the offending target.
        user_index: usize,
        /// Their interest count.
        interests: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::TargetTooFewInterests { user_index, interests } => {
                write!(f, "target user {user_index} has only {interests} interests; 22 are needed")
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl ExperimentPlan {
    /// Builds the plan for a set of target users.
    ///
    /// Campaign geography is "worldwide" and the budget is the paper's
    /// 10 €/day over the paper's 33-hour schedule.
    ///
    /// # Errors
    ///
    /// Fails if any target has fewer than 22 interests.
    pub fn build<R: Rng + ?Sized>(
        targets: &[&MaterializedUser],
        rng: &mut R,
    ) -> Result<Self, PlanError> {
        let mut campaigns = Vec::with_capacity(targets.len() * EXPERIMENT_SIZES.len());
        for (user_index, user) in targets.iter().enumerate() {
            let sets =
                experiment_nested_sets(user, rng).ok_or(PlanError::TargetTooFewInterests {
                    user_index,
                    interests: user.interests.len(),
                })?;
            for &size in &EXPERIMENT_SIZES {
                let interests = sets[&size].clone();
                let targeting = TargetingSpec::builder()
                    .worldwide()
                    .interests(interests.iter().copied())
                    .build()
                    // lint:allow(no-unwrap) — invariant: prefixes of a distinct list stay distinct and capped
                    .expect("nested sets are distinct and within limits");
                let spec = CampaignSpec {
                    name: format!("FDVT promo — User {} / {} interests", user_index + 1, size),
                    targeting,
                    creativity: Creativity {
                        title: format!("User {} — {} interests", user_index + 1, size),
                        landing_url: format!(
                            "https://fdvt.example/landing/u{}/n{}",
                            user_index + 1,
                            size
                        ),
                    },
                    daily_budget_eur: 10.0,
                    schedule: Schedule::paper_experiment(),
                };
                campaigns.push(CampaignPlan { user_index, interest_count: size, interests, spec });
            }
        }
        Ok(Self { campaigns })
    }

    /// Campaigns for one target.
    pub fn for_user(&self, user_index: usize) -> Vec<&CampaignPlan> {
        self.campaigns.iter().filter(|c| c.user_index == user_index).collect()
    }

    /// Number of campaigns.
    pub fn len(&self) -> usize {
        self.campaigns.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.campaigns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbsim_population::{World, WorldConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan() -> ExperimentPlan {
        let world = World::generate(WorldConfig::test_scale(51)).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let targets: Vec<MaterializedUser> =
            (0..3).map(|_| world.materializer().sample_user_with_count(&mut rng, 100)).collect();
        let refs: Vec<&MaterializedUser> = targets.iter().collect();
        ExperimentPlan::build(&refs, &mut rng).unwrap()
    }

    #[test]
    fn twenty_one_campaigns() {
        let p = plan();
        assert_eq!(p.len(), 21);
        for user in 0..3 {
            assert_eq!(p.for_user(user).len(), 7);
        }
    }

    #[test]
    fn sets_nested_within_user() {
        let p = plan();
        for user in 0..3 {
            let campaigns = p.for_user(user);
            for pair in campaigns.windows(2) {
                // for_user preserves size order (5, 7, 9, 12, 18, 20, 22).
                let (small, large) = (&pair[0], &pair[1]);
                assert!(small.interest_count < large.interest_count);
                for id in &small.interests {
                    assert!(large.interests.contains(id));
                }
            }
        }
    }

    #[test]
    fn groups_partition_sizes() {
        let p = plan();
        let success = p.campaigns.iter().filter(|c| c.in_success_group()).count();
        assert_eq!(success, 12); // 3 users × {12, 18, 20, 22}
        assert_eq!(p.len() - success, 9); // 3 users × {5, 7, 9}
    }

    #[test]
    fn creativities_and_landings_unique() {
        let p = plan();
        let mut urls: Vec<&str> =
            p.campaigns.iter().map(|c| c.spec.creativity.landing_url.as_str()).collect();
        urls.sort();
        urls.dedup();
        assert_eq!(urls.len(), 21);
        let c = &p.for_user(2)[3];
        assert!(c.spec.creativity.title.contains("User 3"));
        assert!(c.spec.creativity.title.contains("12 interests"));
    }

    #[test]
    fn worldwide_budget_and_schedule() {
        let p = plan();
        for c in &p.campaigns {
            assert!(c.spec.targeting.is_worldwide());
            assert_eq!(c.spec.daily_budget_eur, 10.0);
            assert!((c.spec.schedule.active_hours() - 33.0).abs() < 1e-9);
        }
    }

    #[test]
    fn short_target_rejected() {
        let world = World::generate(WorldConfig::test_scale(52)).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let short = world.materializer().sample_user_with_count(&mut rng, 10);
        let err = ExperimentPlan::build(&[&short], &mut rng).unwrap_err();
        assert_eq!(err, PlanError::TargetTooFewInterests { user_index: 0, interests: 10 });
    }
}
