//! §5 under competing demand: the contention sweep.
//!
//! Re-runs the 21-campaign nanotargeting experiment across competition
//! intensities — the same plan, targets, and delivery seeds, with impression
//! opportunities resolved through a [`Marketplace`] of `n` background
//! campaigns. Because background populations are *nested* in `n` (campaign
//! `j` depends only on `(market_seed, j)`) and the foreground RNG stream is
//! untouched by the market hook, the sweep is a controlled experiment:
//! level 0 reproduces the isolated run bit-for-bit, and higher levels show
//! how success rate, reach, and cost respond to contention alone.

use fbsim_marketplace::{Marketplace, MarketplaceConfig};
use fbsim_population::{MaterializedUser, World};
use serde::{Deserialize, Serialize};

use crate::experiment::{run_experiment_in, ExperimentConfig, ExperimentResult};
use crate::validate::NanotargetingVerdict;

/// Aggregate outcome of the 21 campaigns at one competition intensity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentionLevel {
    /// Background campaigns competing for impressions (0 = isolated).
    pub n_campaigns: usize,
    /// Campaigns that successfully nanotargeted their user.
    pub successes: usize,
    /// Successes / campaigns.
    pub success_rate: f64,
    /// Campaigns whose target saw the ad at all.
    pub seen: usize,
    /// Total unique users reached across the 21 campaigns.
    pub total_reached: u64,
    /// Total impressions delivered.
    pub total_impressions: u64,
    /// Total euros billed.
    pub total_cost_eur: f64,
    /// Euros billed for the successful campaigns only.
    pub success_cost_eur: f64,
    /// Mean cost per delivered impression (0 when nothing delivered).
    pub cost_per_impression_eur: f64,
    /// Background campaigns throttled below full delivery by pacing.
    pub market_constrained: usize,
    /// Mean clearing price in the background market, euros per impression
    /// (0 for the isolated level).
    pub market_clearing_price_eur: f64,
}

impl ContentionLevel {
    fn summarize(
        n_campaigns: usize,
        result: &ExperimentResult,
        market: Option<&Marketplace>,
    ) -> Self {
        let successes = result.successes().len();
        let total_impressions: u64 = result.rows.iter().map(|r| r.impressions).sum();
        let total_cost_eur: f64 = result.total_cost();
        Self {
            n_campaigns,
            successes,
            success_rate: successes as f64 / result.rows.len().max(1) as f64,
            seen: result.rows.iter().filter(|r| r.seen).count(),
            total_reached: result.rows.iter().map(|r| r.reached).sum(),
            total_impressions,
            total_cost_eur,
            success_cost_eur: result.success_cost(),
            cost_per_impression_eur: if total_impressions > 0 {
                total_cost_eur / total_impressions as f64
            } else {
                0.0
            },
            market_constrained: market.map_or(0, |m| m.pacing().constrained),
            market_clearing_price_eur: market.map_or(0.0, |m| m.pacing().mean_clearing_price_eur),
        }
    }
}

/// The contention sweep: one [`ContentionLevel`] per competition intensity,
/// plus the per-level experiment results for downstream analysis (e.g. the
/// §8.3 countermeasure contrast).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContentionSweep {
    /// Marketplace master seed shared by every non-zero level.
    pub market_seed: u64,
    /// Aggregates, in the order the levels were requested.
    pub levels: Vec<ContentionLevel>,
    /// Full experiment outcome per level, aligned with `levels`.
    pub results: Vec<ExperimentResult>,
}

impl ContentionSweep {
    /// The isolated (level-0) result, if the sweep included it.
    pub fn baseline(&self) -> Option<&ExperimentResult> {
        self.levels.iter().position(|l| l.n_campaigns == 0).map(|i| &self.results[i])
    }

    /// Renders the cost-versus-contention table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "campaigns | success | seen | reached | impressions |  cost (EUR) | EUR/impr\n",
        );
        for l in &self.levels {
            out.push_str(&format!(
                "{:>9} | {:>7} | {:>4} | {:>7} | {:>11} | {:>11.4} | {:.6}\n",
                l.n_campaigns,
                l.successes,
                l.seen,
                l.total_reached,
                l.total_impressions,
                l.total_cost_eur,
                l.cost_per_impression_eur,
            ));
        }
        out
    }
}

/// Runs the experiment at each competition intensity in `levels`
/// (`0` means no marketplace at all — the isolated path).
///
/// # Errors
///
/// Returns a message for an invalid marketplace config or an unbuildable
/// plan (a target with fewer than 22 interests).
pub fn run_contention_sweep(
    world: &World,
    targets: &[&MaterializedUser],
    config: &ExperimentConfig,
    market_seed: u64,
    levels: &[usize],
) -> Result<ContentionSweep, String> {
    let _span = uof_telemetry::span!("nanotarget.contention_sweep", levels = levels.len());
    let mut out = ContentionSweep {
        market_seed,
        levels: Vec::with_capacity(levels.len()),
        results: Vec::with_capacity(levels.len()),
    };
    for &n in levels {
        let market = if n == 0 {
            None
        } else {
            Some(Marketplace::setup(world, MarketplaceConfig::seeded(market_seed, n))?)
        };
        let result = run_experiment_in(
            world,
            targets,
            config,
            market.as_ref().map(|m| m as &dyn fbsim_adplatform::delivery::ImpressionMarket),
        )
        .map_err(|e| format!("plan error at level {n}: {e:?}"))?;
        out.levels.push(ContentionLevel::summarize(n, &result, market.as_ref()));
        out.results.push(result);
    }
    Ok(out)
}

/// Fraction of campaigns still succeeding at each level, keyed by level —
/// the §5 "success rate under contention" curve.
pub fn success_curve(sweep: &ContentionSweep) -> Vec<(usize, f64)> {
    sweep.levels.iter().map(|l| (l.n_campaigns, l.success_rate)).collect()
}

/// Which campaigns flipped from success to failure (or back) between the
/// isolated baseline and a contended level, by plan order.
pub fn flipped_verdicts(baseline: &ExperimentResult, contended: &ExperimentResult) -> Vec<usize> {
    baseline
        .rows
        .iter()
        .zip(&contended.rows)
        .enumerate()
        .filter(|(_, (a, b))| {
            (a.verdict == NanotargetingVerdict::Success)
                != (b.verdict == NanotargetingVerdict::Success)
        })
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::run_experiment;
    use fbsim_population::WorldConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    fn fixture() -> &'static (World, Vec<MaterializedUser>) {
        static FIX: OnceLock<(World, Vec<MaterializedUser>)> = OnceLock::new();
        FIX.get_or_init(|| {
            let world = World::generate(WorldConfig::test_scale(13)).unwrap();
            let mut rng = StdRng::seed_from_u64(99);
            let targets: Vec<MaterializedUser> = (0..3)
                .map(|_| world.materializer().sample_user_with_count(&mut rng, 120))
                .collect();
            (world, targets)
        })
    }

    fn sweep() -> &'static ContentionSweep {
        static SWEEP: OnceLock<ContentionSweep> = OnceLock::new();
        SWEEP.get_or_init(|| {
            let (world, targets) = fixture();
            let refs: Vec<&MaterializedUser> = targets.iter().collect();
            run_contention_sweep(world, &refs, &ExperimentConfig::default(), 2021, &[0, 16, 64])
                .unwrap()
        })
    }

    #[test]
    fn level_zero_is_identical_to_the_isolated_run() {
        let (world, targets) = fixture();
        let refs: Vec<&MaterializedUser> = targets.iter().collect();
        let isolated = run_experiment(world, &refs, &ExperimentConfig::default()).unwrap();
        let baseline = sweep().baseline().expect("sweep includes level 0");
        assert_eq!(isolated.rows, baseline.rows);
        for (a, b) in isolated.rows.iter().zip(&baseline.rows) {
            assert_eq!(a.cost_eur.to_bits(), b.cost_eur.to_bits(), "cost must be bit-identical");
        }
    }

    #[test]
    fn contention_weakly_reduces_target_delivery() {
        // With the foreground RNG stream untouched, losing auctions can
        // only remove impressions: "seen" never increases with contention.
        let s = sweep();
        assert_eq!(s.levels[0].n_campaigns, 0);
        for pair in s.levels.windows(2) {
            assert!(
                pair[1].seen <= pair[0].seen,
                "seen rose with contention: {:?} -> {:?}",
                pair[0].seen,
                pair[1].seen
            );
        }
    }

    #[test]
    fn contended_levels_record_market_state() {
        let s = sweep();
        assert!(s.levels[0].market_clearing_price_eur == 0.0);
        let top = s.levels.last().unwrap();
        assert!(top.market_clearing_price_eur > 0.0);
        assert!(top.market_constrained > 0, "64 campaigns should include throttled ones");
    }

    #[test]
    fn success_curve_and_flips_are_consistent() {
        let s = sweep();
        let curve = success_curve(s);
        assert_eq!(curve.len(), 3);
        assert!(curve.iter().all(|&(_, rate)| (0.0..=1.0).contains(&rate)));
        let flips = flipped_verdicts(&s.results[0], s.results.last().unwrap());
        let s0 = s.levels[0].successes;
        let s2 = s.levels.last().unwrap().successes;
        assert!(flips.len() >= s0.abs_diff(s2), "flip count covers the success delta");
    }

    #[test]
    fn render_lists_every_level() {
        let text = sweep().render();
        for l in &sweep().levels {
            assert!(text.contains(&format!("{:>9}", l.n_campaigns)));
        }
    }
}
