//! # nanotarget
//!
//! The nanotargeting experiment of Section 5, end to end, plus the §8
//! countermeasure evaluation.
//!
//! * [`plan`] — the experiment plan: 3 target users × 7 nested random
//!   interest sets (5, 7, 9, 12, 18, 20, 22), Success Group vs Failure
//!   Group, one ad creativity and landing page per campaign.
//! * [`weblog`] — the landing-page click log with secret-keyed IP
//!   pseudonymisation (the paper's privacy measure for click validation).
//! * [`validate`] — the three-signal success criterion: dashboard
//!   `reached == 1`, a click-log record, and a "Why am I seeing this ad?"
//!   snapshot matching the configured audience. A campaign *fails* as a
//!   nanotargeting attempt whenever more than one user is reached, even if
//!   the target is among them.
//! * [`experiment`] — runs the 21 campaigns against the delivery simulator
//!   and produces Table 2; [`experiment::run_experiment_in`] resolves
//!   impressions through an `fbsim-marketplace` of competing campaigns.
//! * [`contention`] — re-runs §5 across competition-intensity levels:
//!   success rate, reach, and cost-versus-contention curves over a nested
//!   background-campaign population (level 0 reproduces the isolated run
//!   bit-for-bit).
//! * [`countermeasures`] — replays the experiment (and the custom-audience
//!   bypass) under the §8.3 policies and reports what is blocked, including
//!   the isolated-versus-contended blocked-set contrast.
//! * [`inference`] — the Korolova-style attribute-inference attack of
//!   §7.2.1: once an audience pins a single person, per-candidate probe
//!   campaigns reveal their private attributes; also blocked by the §8.3
//!   active-audience minimum.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod contention;
pub mod countermeasures;
pub mod experiment;
pub mod inference;
pub mod plan;
pub mod validate;
pub mod weblog;

pub use contention::{run_contention_sweep, ContentionLevel, ContentionSweep};
pub use experiment::{
    run_experiment, run_experiment_in, ExperimentConfig, ExperimentResult, Table2Row,
};
pub use plan::{CampaignPlan, ExperimentPlan};
pub use validate::{validate_campaign, NanotargetingVerdict, ValidationSignals};
pub use weblog::{ClickLog, PseudonymizedIp};
