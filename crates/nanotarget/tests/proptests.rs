//! Property-based tests of the experiment harness primitives.

use nanotarget::weblog::{pseudonymize, ClickLog};
use proptest::prelude::*;

proptest! {
    #[test]
    fn pseudonymisation_is_deterministic_and_keyed(ip: [u8; 4], k1: u64, k2: u64) {
        prop_assert_eq!(pseudonymize(ip, k1), pseudonymize(ip, k1));
        if k1 != k2 {
            // Different keys virtually never collide.
            prop_assert_ne!(pseudonymize(ip, k1), pseudonymize(ip, k2));
        }
    }

    #[test]
    fn unique_sources_bounded_by_clicks(
        clicks in prop::collection::vec((any::<[u8; 4]>(), 0.0f64..33.0), 0..50),
        key: u64,
    ) {
        let mut log = ClickLog::new();
        for (ip, t) in &clicks {
            log.record("lp", *t, *ip, key);
        }
        prop_assert_eq!(log.click_count("lp"), clicks.len());
        prop_assert!(log.unique_sources("lp") <= clicks.len());
        let mut distinct: Vec<[u8; 4]> = clicks.iter().map(|(ip, _)| *ip).collect();
        distinct.sort();
        distinct.dedup();
        prop_assert_eq!(log.unique_sources("lp"), distinct.len());
    }
}
