//! Property-based tests of the population model's core invariants.

use fbsim_population::reach::CountryFilter;
use fbsim_population::{InterestId, World, WorldConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared small world: generation is too expensive per proptest case.
fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let mut cfg = WorldConfig::test_scale(123);
        cfg.n_interests = 500;
        cfg.panel_size = 4_000;
        World::generate(cfg).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reach_monotone_under_extension(ids in prop::collection::vec(0u32..500, 1..8), extra in 0u32..500) {
        let mut ids: Vec<InterestId> = ids.into_iter().map(InterestId).collect();
        ids.dedup();
        let engine = world().reach_engine();
        let base = engine.conjunction_reach(&ids);
        ids.push(InterestId(extra));
        let extended = engine.conjunction_reach(&ids);
        prop_assert!(extended <= base + 1e-6, "extending a conjunction grew reach: {base} -> {extended}");
    }

    #[test]
    fn reach_order_invariant(ids in prop::collection::vec(0u32..500, 2..8), seed in 0u64..100) {
        let ids: Vec<InterestId> = ids.into_iter().map(InterestId).collect();
        let engine = world().reach_engine();
        let forward = engine.conjunction_reach(&ids);
        let mut shuffled = ids.clone();
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        shuffled.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let back = engine.conjunction_reach(&shuffled);
        prop_assert!((forward - back).abs() <= 1e-6 * forward.abs().max(1.0));
    }

    #[test]
    fn nested_matches_pointwise(ids in prop::collection::vec(0u32..500, 1..6)) {
        let ids: Vec<InterestId> = ids.into_iter().map(InterestId).collect();
        let engine = world().reach_engine();
        let nested = engine.nested_reaches(&ids);
        for k in 0..ids.len() {
            let direct = engine.conjunction_reach(&ids[..=k]);
            prop_assert!((nested[k] - direct).abs() <= 1e-6 * direct.max(1.0));
        }
    }

    #[test]
    fn country_filters_are_subadditive(id in 0u32..500, split in 1u16..49) {
        let engine = world().reach_engine();
        let ids = [InterestId(id)];
        let left: Vec<u16> = (0..split).collect();
        let right: Vec<u16> = (split..50).collect();
        let l = engine.conjunction_reach_in(&ids, CountryFilter::of(&left));
        let r = engine.conjunction_reach_in(&ids, CountryFilter::of(&right));
        let all = engine.conjunction_reach_in(&ids, CountryFilter::ALL);
        prop_assert!((l + r - all).abs() <= 1e-6 * all.max(1.0));
    }

    #[test]
    fn independence_never_exceeds_single_reach(ids in prop::collection::vec(0u32..500, 1..6)) {
        let mut ids: Vec<InterestId> = ids.into_iter().map(InterestId).collect();
        ids.sort();
        ids.dedup();
        let engine = world().reach_engine();
        let independent = engine.conjunction_reach_independent(&ids);
        for &id in &ids {
            prop_assert!(independent <= engine.single_reach(id) + 1e-6);
        }
    }

    #[test]
    fn materialized_users_are_valid(count in 1usize..200, seed in 0u64..50) {
        let user = {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            world().materializer().sample_user_with_count(&mut rng, count)
        };
        prop_assert_eq!(user.interests.len(), count.min(world().catalog().len()));
        let mut dedup = user.interests.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), user.interests.len());
        for id in &user.interests {
            prop_assert!(world().catalog().get(*id).is_some());
        }
        prop_assert!(user.country < 50);
    }

    #[test]
    fn lp_sorting_is_total(count in 2usize..100, seed in 0u64..50) {
        let user = {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            world().materializer().sample_user_with_count(&mut rng, count)
        };
        let sorted = user.interests_by_audience(world().catalog());
        prop_assert_eq!(sorted.len(), user.interests.len());
        for w in sorted.windows(2) {
            prop_assert!(
                world().catalog().interest(w[0]).target_audience
                    <= world().catalog().interest(w[1]).target_audience
            );
        }
    }
}

/// Not a property test, but lives with the statistical validation: the
/// calibrated single-interest audiences follow the Fig.-2 log-normal shape,
/// not just its quartiles (KS distance against the target CDF).
#[test]
fn calibrated_audiences_follow_fig2_shape() {
    use fbsim_population::calibration::measured_single_audiences;
    use fbsim_stats::dist::Log10Normal;
    use fbsim_stats::ks::ks_one_sample;

    let w = world();
    let audiences = measured_single_audiences(w.catalog(), w.panel());
    let cfg = w.config();
    let target = Log10Normal::from_quartiles(cfg.audience_q25, cfg.audience_q75);
    let d = ks_one_sample(&audiences, |x| {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.log10() - target.mu) / target.sigma;
        // Logistic approximation of Φ (max error ~0.02, well inside the
        // acceptance band below).
        1.0 / (1.0 + (-1.702 * z).exp())
    })
    .unwrap();
    // Calibration + the 20-audience floor + saturation leave a residual
    // shape error; it must stay small (the quartile match is ~6%).
    assert!(d < 0.12, "KS distance {d} against the Fig.-2 target shape");
}
