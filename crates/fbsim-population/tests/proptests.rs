//! Property-based tests of the population model's core invariants.

use fbsim_population::reach::CountryFilter;
use fbsim_population::{InterestId, World, WorldConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared small world: generation is too expensive per proptest case.
fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let mut cfg = WorldConfig::test_scale(123);
        cfg.n_interests = 500;
        cfg.panel_size = 4_000;
        World::generate(cfg).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reach_monotone_under_extension(ids in prop::collection::vec(0u32..500, 1..8), extra in 0u32..500) {
        let mut ids: Vec<InterestId> = ids.into_iter().map(InterestId).collect();
        ids.dedup();
        let engine = world().reach_engine();
        let base = engine.conjunction_reach(&ids);
        ids.push(InterestId(extra));
        let extended = engine.conjunction_reach(&ids);
        prop_assert!(extended <= base + 1e-6, "extending a conjunction grew reach: {base} -> {extended}");
    }

    #[test]
    fn reach_order_invariant(ids in prop::collection::vec(0u32..500, 2..8), seed in 0u64..100) {
        let ids: Vec<InterestId> = ids.into_iter().map(InterestId).collect();
        let engine = world().reach_engine();
        let forward = engine.conjunction_reach(&ids);
        let mut shuffled = ids.clone();
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        shuffled.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let back = engine.conjunction_reach(&shuffled);
        prop_assert!((forward - back).abs() <= 1e-6 * forward.abs().max(1.0));
    }

    #[test]
    fn nested_matches_pointwise(ids in prop::collection::vec(0u32..500, 1..6)) {
        let ids: Vec<InterestId> = ids.into_iter().map(InterestId).collect();
        let engine = world().reach_engine();
        let nested = engine.nested_reaches(&ids);
        for k in 0..ids.len() {
            let direct = engine.conjunction_reach(&ids[..=k]);
            prop_assert!((nested[k] - direct).abs() <= 1e-6 * direct.max(1.0));
        }
    }

    #[test]
    fn scalar_nested_sweep_prefixes_bit_identical(
        ids in prop::collection::vec(0u32..500, 1..8),
        countries in prop::collection::vec(0u16..50, 0..4),
        split in 0usize..8,
    ) {
        // The unified freeze-and-drop cutoff contract (reach.rs module docs):
        // every prefix reach is the SAME f64 bits whether computed by the
        // scalar path, the nested path, or any sweep_begin/sweep_extend
        // split of the sequence.
        let ids: Vec<InterestId> = ids.into_iter().map(InterestId).collect();
        let filter = if countries.is_empty() {
            CountryFilter::ALL
        } else {
            CountryFilter::of(&countries)
        };
        let engine = world().reach_engine();
        let nested = engine.nested_reaches_in(&ids, filter);
        for k in 1..=ids.len() {
            let scalar = engine.conjunction_reach_in(&ids[..k], filter);
            prop_assert_eq!(
                scalar.to_bits(),
                nested[k - 1].to_bits(),
                "scalar {} != nested {} at prefix {}",
                scalar,
                nested[k - 1],
                k
            );
        }
        let split = split.min(ids.len());
        let state = engine.sweep_begin(filter);
        let (head, state) = engine.sweep_extend(&state, &ids[..split]);
        let (tail, _) = engine.sweep_extend(&state, &ids[split..]);
        let swept: Vec<f64> = head.into_iter().chain(tail).collect();
        prop_assert_eq!(swept.len(), nested.len());
        for (k, (s, n)) in swept.iter().zip(&nested).enumerate() {
            prop_assert_eq!(
                s.to_bits(),
                n.to_bits(),
                "sweep split {} diverges from nested at prefix {}",
                split,
                k + 1
            );
        }
    }

    #[test]
    fn index_counts_match_reference_scan_at_any_thread_count(
        ids in prop::collection::vec(0u32..500, 0..6),
        countries in prop::collection::vec(0u16..50, 0..3),
        threads in 1usize..5,
    ) {
        use fbsim_population::index::{boolean_reference_count, ReachIndex};
        let ids: Vec<InterestId> = ids.into_iter().map(InterestId).collect();
        let filter = if countries.is_empty() {
            CountryFilter::ALL
        } else {
            CountryFilter::of(&countries)
        };
        let idx = rayon::with_thread_count(threads, || ReachIndex::build_for(world(), &ids));
        let want = boolean_reference_count(world(), &ids, filter);
        prop_assert_eq!(idx.conjunction_count(&ids, filter), Some(want));
    }

    #[test]
    fn country_filters_are_subadditive(id in 0u32..500, split in 1u16..49) {
        let engine = world().reach_engine();
        let ids = [InterestId(id)];
        let left: Vec<u16> = (0..split).collect();
        let right: Vec<u16> = (split..50).collect();
        let l = engine.conjunction_reach_in(&ids, CountryFilter::of(&left));
        let r = engine.conjunction_reach_in(&ids, CountryFilter::of(&right));
        let all = engine.conjunction_reach_in(&ids, CountryFilter::ALL);
        prop_assert!((l + r - all).abs() <= 1e-6 * all.max(1.0));
    }

    #[test]
    fn independence_never_exceeds_single_reach(ids in prop::collection::vec(0u32..500, 1..6)) {
        let mut ids: Vec<InterestId> = ids.into_iter().map(InterestId).collect();
        ids.sort();
        ids.dedup();
        let engine = world().reach_engine();
        let independent = engine.conjunction_reach_independent(&ids);
        for &id in &ids {
            prop_assert!(independent <= engine.single_reach(id) + 1e-6);
        }
    }

    #[test]
    fn materialized_users_are_valid(count in 1usize..200, seed in 0u64..50) {
        let user = {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            world().materializer().sample_user_with_count(&mut rng, count)
        };
        prop_assert_eq!(user.interests.len(), count.min(world().catalog().len()));
        let mut dedup = user.interests.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), user.interests.len());
        for id in &user.interests {
            prop_assert!(world().catalog().get(*id).is_some());
        }
        prop_assert!(user.country < 50);
    }

    #[test]
    fn lp_sorting_is_total(count in 2usize..100, seed in 0u64..50) {
        let user = {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            world().materializer().sample_user_with_count(&mut rng, count)
        };
        let sorted = user.interests_by_audience(world().catalog());
        prop_assert_eq!(sorted.len(), user.interests.len());
        for w in sorted.windows(2) {
            prop_assert!(
                world().catalog().interest(w[0]).target_audience
                    <= world().catalog().interest(w[1]).target_audience
            );
        }
    }
}

/// Deterministic regression for the scalar/nested cutoff divergence: short
/// conjunctions never reach the 1e-300 underflow cutoff, so this drives a
/// 400-interest sequence through it. Under the pre-fix scalar contract
/// (truncate-then-accumulate) the prefixes in the freeze transition region
/// disagreed with the nested path; under freeze-and-drop every prefix is
/// bit-identical and the deep tail collapses to exactly +0.0 once every
/// panel user has frozen.
#[test]
fn underflow_cutoff_is_bit_identical_and_freezes_to_zero() {
    let engine = world().reach_engine();
    let ids: Vec<InterestId> = (0..400u32).map(|i| InterestId(i * 7 % 500)).collect();
    let nested = engine.nested_reaches_in(&ids, CountryFilter::ALL);
    assert!(nested[0] > 0.0);
    assert_eq!(
        nested.last().copied().map(f64::to_bits),
        Some(0.0f64.to_bits()),
        "400 deep, every panel user must have frozen"
    );
    // Check scalar agreement across the whole freeze transition region:
    // every prefix where the nested value changes, plus the deep tail.
    let mut checkpoints: Vec<usize> =
        (1..nested.len()).filter(|&k| nested[k].to_bits() != nested[k - 1].to_bits()).collect();
    checkpoints.extend([1, nested.len() / 2, nested.len()]);
    for k in checkpoints {
        let scalar = engine.conjunction_reach_in(&ids[..k], CountryFilter::ALL);
        assert_eq!(
            scalar.to_bits(),
            nested[k - 1].to_bits(),
            "prefix {k}: scalar {scalar} vs nested {}",
            nested[k - 1]
        );
    }
    // The sweep path freezes identically across an arbitrary split.
    let state = engine.sweep_begin(CountryFilter::ALL);
    let (head, state) = engine.sweep_extend(&state, &ids[..123]);
    let (tail, _) = engine.sweep_extend(&state, &ids[123..]);
    let swept: Vec<f64> = head.into_iter().chain(tail).collect();
    for (k, (s, n)) in swept.iter().zip(&nested).enumerate() {
        assert_eq!(s.to_bits(), n.to_bits(), "sweep diverges at prefix {}", k + 1);
    }
}

/// Not a property test, but lives with the statistical validation: the
/// calibrated single-interest audiences follow the Fig.-2 log-normal shape,
/// not just its quartiles (KS distance against the target CDF).
#[test]
fn calibrated_audiences_follow_fig2_shape() {
    use fbsim_population::calibration::measured_single_audiences;
    use fbsim_stats::dist::Log10Normal;
    use fbsim_stats::ks::ks_one_sample;

    let w = world();
    let audiences = measured_single_audiences(w.catalog(), w.panel());
    let cfg = w.config();
    let target = Log10Normal::from_quartiles(cfg.audience_q25, cfg.audience_q75);
    let d = ks_one_sample(&audiences, |x| {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.log10() - target.mu) / target.sigma;
        // Logistic approximation of Φ (max error ~0.02, well inside the
        // acceptance band below).
        1.0 / (1.0 + (-1.702 * z).exp())
    })
    .unwrap();
    // Calibration + the 20-audience floor + saturation leave a residual
    // shape error; it must stay small (the quartile match is ~6%).
    assert!(d < 0.12, "KS distance {d} against the Fig.-2 target shape");
}
