//! Latent user tastes.
//!
//! A taste is a sparse distribution over topics: a user genuinely follows a
//! handful of topics (with random weights summing to 1) and has only a small
//! baseline affinity for the rest. The taste weights are **budget shares**:
//! a user with weight `w` on topic `t` devotes fraction `w / (1 + base)` of
//! their interest budget to `t`'s interests (distributed by popularity
//! within the topic) and fraction `base / (1 + base)` to the whole catalog
//! as background noise. In affinity form,
//!
//! ```text
//! f_u(t) = base + w_u(t) · S_total / S_t
//! ```
//!
//! where `S_t` is topic `t`'s score mass — so a taste weight matters equally
//! whether the topic is huge or niche. This coupling is what makes two
//! interests of the same person co-occur far more often than independence
//! would predict — the correlation the paper's slow conjunction-audience
//! decay requires.

use fbsim_stats::dist::{zipf_weights, AliasTable};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::catalog::TopicId;
use crate::config::WorldConfig;

/// Maximum taste topics per user — fixed storage keeps the reach engine's
/// panel compact and cache-friendly.
pub const MAX_TASTE_TOPICS: usize = 8;

/// A user's sparse taste over topics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Taste {
    /// `(topic, weight)` pairs; weights sum to 1. At most
    /// [`MAX_TASTE_TOPICS`] entries, sorted by topic id.
    entries: Vec<(TopicId, f32)>,
}

impl Taste {
    /// Builds a taste from `(topic, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if empty, longer than [`MAX_TASTE_TOPICS`], containing
    /// duplicate topics, non-positive weights, or weights that do not sum to
    /// ~1 — all construction-time logic errors.
    pub fn new(mut entries: Vec<(TopicId, f32)>) -> Self {
        assert!(!entries.is_empty(), "taste must cover at least one topic");
        assert!(entries.len() <= MAX_TASTE_TOPICS, "too many taste topics");
        entries.sort_by_key(|(t, _)| *t);
        assert!(entries.windows(2).all(|w| w[0].0 != w[1].0), "duplicate topic in taste");
        let sum: f32 = entries
            .iter()
            .map(|&(_, w)| {
                assert!(w > 0.0 && w.is_finite(), "taste weights must be positive");
                w
            })
            .sum();
        assert!((sum - 1.0).abs() < 1e-3, "taste weights must sum to 1, got {sum}");
        Self { entries }
    }

    /// The `(topic, weight)` pairs, sorted by topic.
    pub fn entries(&self) -> &[(TopicId, f32)] {
        &self.entries
    }

    /// Weight of `topic` in this taste (0 when outside the taste).
    pub fn weight(&self, topic: TopicId) -> f32 {
        // Tastes hold at most 8 entries: linear scan beats binary search.
        self.entries.iter().find(|&&(t, _)| t == topic).map_or(0.0, |&(_, w)| w)
    }

    /// Number of taste topics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the taste is empty (never true for a constructed taste).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Samples tastes according to a world configuration.
///
/// Topic attractiveness for taste selection follows the same Zipf skew as
/// topic sizes: big topics attract more fans.
#[derive(Debug, Clone)]
pub struct TasteSampler {
    topic_table: AliasTable,
    min_topics: u32,
    max_topics: u32,
}

impl TasteSampler {
    /// Builds a sampler for `config`.
    pub fn new(config: &WorldConfig) -> Self {
        Self {
            topic_table: AliasTable::new(&zipf_weights(
                config.n_topics as usize,
                config.topic_zipf_s,
            )),
            min_topics: config.topics_per_user_min,
            max_topics: config.topics_per_user_max,
        }
    }

    /// Draws one taste: `k ~ U[min, max]` distinct topics, weights from
    /// normalised exponential draws (a flat Dirichlet in disguise).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Taste {
        self.sample_with_range(rng, self.min_topics, self.max_topics)
    }

    /// [`Self::sample`] with an explicit topic-count range — used by the
    /// FDVT cohort generator to inject demographic taste-diversity effects.
    pub fn sample_with_range<R: Rng + ?Sized>(&self, rng: &mut R, min: u32, max: u32) -> Taste {
        let min = min.clamp(1, MAX_TASTE_TOPICS as u32);
        let max = max.clamp(min, MAX_TASTE_TOPICS as u32);
        let k = rng.gen_range(min..=max) as usize;
        let mut topics: Vec<u16> = Vec::with_capacity(k);
        // Rejection sampling for distinct topics; k ≪ n_topics so this
        // terminates quickly.
        while topics.len() < k {
            let t = self.topic_table.sample(rng) as u16;
            if !topics.contains(&t) {
                topics.push(t);
            }
        }
        let raw: Vec<f32> = (0..k)
            .map(|_| {
                // Exponential(1) via inverse CDF; bounded away from 0.
                let u: f64 = rng.gen::<f64>().max(1e-12);
                (-u.ln()) as f32
            })
            .collect();
        let sum: f32 = raw.iter().sum();
        let entries = topics.into_iter().zip(raw).map(|(t, w)| (TopicId(t), w / sum)).collect();
        Taste::new(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_sum_to_one() {
        let sampler = TasteSampler::new(&WorldConfig::test_scale(5));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let taste = sampler.sample(&mut rng);
            let sum: f32 = taste.entries().iter().map(|&(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-4);
            assert!(taste.len() >= 3 && taste.len() <= 6);
        }
    }

    #[test]
    fn topics_are_distinct() {
        let sampler = TasteSampler::new(&WorldConfig::test_scale(5));
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let taste = sampler.sample(&mut rng);
            let mut seen: Vec<TopicId> = taste.entries().iter().map(|&(t, _)| t).collect();
            seen.dedup();
            assert_eq!(seen.len(), taste.len());
        }
    }

    #[test]
    fn weight_lookup() {
        let taste = Taste::new(vec![(TopicId(9), 1.0)]);
        assert_eq!(taste.weight(TopicId(9)), 1.0);
        assert_eq!(taste.weight(TopicId(8)), 0.0);
    }

    #[test]
    fn popular_topics_attract_more_fans() {
        let cfg = WorldConfig::test_scale(5);
        let sampler = TasteSampler::new(&cfg);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0usize; cfg.n_topics as usize];
        for _ in 0..5_000 {
            for &(t, _) in sampler.sample(&mut rng).entries() {
                counts[t.0 as usize] += 1;
            }
        }
        // Topic 0 (Zipf rank 1) should clearly beat the last topic.
        assert!(counts[0] > counts[cfg.n_topics as usize - 1] * 2);
    }

    #[test]
    #[should_panic(expected = "at least one topic")]
    fn empty_taste_rejected() {
        Taste::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "duplicate topic")]
    fn duplicate_topics_rejected() {
        Taste::new(vec![(TopicId(1), 0.5), (TopicId(1), 0.5)]);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_weight_sum_rejected() {
        Taste::new(vec![(TopicId(1), 0.3), (TopicId(2), 0.3)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_weight_rejected() {
        Taste::new(vec![(TopicId(1), 0.0), (TopicId(2), 1.0)]);
    }
}
