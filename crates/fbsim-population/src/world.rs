//! The assembled world: catalog + panel, calibrated and ready for queries.

use serde::{Deserialize, Serialize};

use crate::calibration::{calibrate_scores, CalibrationReport};
use crate::catalog::InterestCatalog;
use crate::cohort::{MaterializedUser, Materializer};
use crate::config::WorldConfig;
use crate::panel::Panel;
use crate::reach::ReachEngine;

/// A fully constructed synthetic world.
///
/// Construction is deterministic in the config (including its seed):
/// generate catalog → generate panel → calibrate scores to the Fig.-2
/// audience targets. A [`World`] is the single object the ad platform, the
/// FDVT simulator and the uniqueness analysis all share.
#[derive(Debug, Clone)]
pub struct World {
    config: WorldConfig,
    catalog: InterestCatalog,
    panel: Panel,
    calibration: CalibrationReport,
}

/// Error constructing a world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldError(pub String);

impl std::fmt::Display for WorldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid world configuration: {}", self.0)
    }
}

impl std::error::Error for WorldError {}

impl World {
    /// Generates and calibrates a world.
    ///
    /// # Errors
    ///
    /// Returns [`WorldError`] when the configuration fails validation.
    pub fn generate(config: WorldConfig) -> Result<Self, WorldError> {
        config.validate().map_err(WorldError)?;
        let mut catalog = InterestCatalog::generate(&config);
        let mut panel = Panel::generate(&config, &catalog);
        let calibration = calibrate_scores(&mut catalog, &mut panel, config.calibration_rounds);
        Ok(Self { config, catalog, panel, calibration })
    }

    /// The configuration the world was built from.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// The calibrated interest catalog.
    pub fn catalog(&self) -> &InterestCatalog {
        &self.catalog
    }

    /// The latent Monte-Carlo panel.
    pub fn panel(&self) -> &Panel {
        &self.panel
    }

    /// How well calibration matched the Fig.-2 targets.
    pub fn calibration(&self) -> &CalibrationReport {
        &self.calibration
    }

    /// The world's mutation generation, bumped by every change to the
    /// carriage model ([`World::scale_budget_factor`], recalibration).
    ///
    /// Reach answers are a pure function of `(query, generation)`: any
    /// cache keyed on a query is valid exactly as long as the generation it
    /// was filled under is still current. The `reach-cache` crate uses this
    /// as its invalidation epoch.
    pub fn generation(&self) -> u64 {
        self.panel.generation()
    }

    /// Rescales the panel's global assignment-budget factor by `ratio` and
    /// refreshes the carriage model — the world-level mutation hook (the
    /// real-platform analog: the MAU base shifting under a live reach
    /// service). Bumps [`World::generation`], so epoch-keyed caches drop
    /// their stale entries lazily.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not a positive finite number (see
    /// [`Panel::scale_budget_factor`]).
    pub fn scale_budget_factor(&mut self, ratio: f64) {
        self.panel.scale_budget_factor(ratio, &self.catalog);
    }

    /// A reach engine over this world.
    pub fn reach_engine(&self) -> ReachEngine<'_> {
        ReachEngine::new(&self.catalog, &self.panel)
    }

    /// A materialiser for drawing concrete users from this world.
    pub fn materializer(&self) -> Materializer<'_> {
        Materializer::new(&self.config, &self.catalog)
    }

    /// Convenience: materialise a cohort of `size` users with `seed`.
    pub fn sample_cohort(&self, size: usize, seed: u64) -> Vec<MaterializedUser> {
        self.materializer().sample_cohort(size, seed)
    }

    /// Total simulated population.
    pub fn population(&self) -> u64 {
        self.config.population
    }
}

/// Serialisable summary of a world (for experiment artefacts).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldSummary {
    /// Configuration used.
    pub config: WorldConfig,
    /// Calibration quality.
    pub calibration: CalibrationReport,
}

impl From<&World> for WorldSummary {
    fn from(world: &World) -> Self {
        Self { config: world.config.clone(), calibration: world.calibration.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_test_world() {
        let world = World::generate(WorldConfig::test_scale(1)).unwrap();
        assert_eq!(world.population(), 10_000_000);
        assert_eq!(world.catalog().len(), 2_000);
        assert!(world.calibration().median_rel_error < 0.15);
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = WorldConfig::test_scale(1);
        cfg.panel_size = 0;
        let err = World::generate(cfg).unwrap_err();
        assert!(err.to_string().contains("panel"));
    }

    #[test]
    fn engine_and_materializer_share_calibrated_scores() {
        let world = World::generate(WorldConfig::test_scale(2)).unwrap();
        let engine = world.reach_engine();
        // Single-interest reach should be close to the target audience after
        // calibration, for a few spot checks across the range.
        for id in [0u32, 100, 1000, 1999] {
            let interest = world.catalog().interest(crate::catalog::InterestId(id));
            let reach = engine.single_reach(interest.id);
            let rel = (reach - interest.target_audience).abs() / interest.target_audience;
            assert!(
                rel < 0.5,
                "interest {id}: reach {reach} vs target {}",
                interest.target_audience
            );
        }
    }

    #[test]
    fn generation_bumps_on_mutation_and_changes_reach() {
        let mut world = World::generate(WorldConfig::test_scale(4)).unwrap();
        let gen0 = world.generation();
        let before = world.reach_engine().single_reach(crate::catalog::InterestId(7));
        world.scale_budget_factor(1.25);
        assert!(world.generation() > gen0, "mutation must advance the generation");
        let after = world.reach_engine().single_reach(crate::catalog::InterestId(7));
        assert!(after > before, "larger budget factor must grow reach: {before} -> {after}");
    }

    #[test]
    fn generation_stable_without_mutation() {
        let world = World::generate(WorldConfig::test_scale(5)).unwrap();
        let g = world.generation();
        let _ = world.reach_engine().conjunction_reach(&[crate::catalog::InterestId(1)]);
        assert_eq!(world.generation(), g, "queries must not advance the generation");
    }

    #[test]
    fn summary_serialises() {
        let world = World::generate(WorldConfig::test_scale(3)).unwrap();
        let summary = WorldSummary::from(&world);
        let json = serde_json::to_string(&summary).unwrap();
        assert!(json.contains("median_rel_error"));
    }
}
