//! The conjunction-reach engine — the simulated *Potential Reach* oracle.
//!
//! `AS(S) = scale · Σ_v Π_{i∈S} p_vi`: the expected number of users carrying
//! every interest in `S`, estimated over the latent panel. This is the
//! number the paper reads from the FB Ads Manager API for each combination
//! of interests (before FB's reporting floor is applied — the floor lives in
//! `fbsim-adplatform`, which wraps this engine).
//!
//! Two access patterns matter:
//!
//! * **single queries** ([`ReachEngine::conjunction_reach`]) for ad-platform
//!   audience sizing;
//! * **nested sweeps** ([`ReachEngine::nested_reaches`]) for the uniqueness
//!   model, which needs the reach of every prefix of a 25-interest sequence.
//!   The sweep keeps one running product per panel user and performs one
//!   multiply per user per added interest — 25× cheaper than 25 independent
//!   queries.
//!
//! The module also exposes the **global-independence baseline**
//! ([`ReachEngine::conjunction_reach_independent`]) used by the ablation
//! bench: `Pop · Π (AS_i / Pop)`, i.e. what the audience would be if
//! interests were uncorrelated. Comparing the two shows why the latent-taste
//! correlation structure is load-bearing for reproducing the paper.
//!
//! # The underflow-cutoff contract (freeze-and-drop)
//!
//! Every evaluation path applies one cutoff rule to the per-user running
//! product: a user whose product has fallen to `≤ 1e-300` is **frozen** —
//! the product stops updating and the user contributes **nothing** to any
//! deeper prefix (the first interest always contributes, because every
//! product starts at `1.0 > 1e-300`). The scalar path
//! ([`ReachEngine::conjunction_reach_in`]), the one-shot sweep
//! ([`ReachEngine::nested_reaches_in`]) and the resumable sweep
//! ([`ReachEngine::sweep_extend`]) all implement exactly this rule, with the
//! same chunk partition and the same fold order, so
//! `conjunction_reach_in(&ids[..k], f)` is **bit-identical** to
//! `nested_reaches_in(ids, f)[k - 1]` for every prefix length `k` — however
//! the sequence is split across sweep calls and at any thread count. That
//! equivalence is what lets the serving layer canonicalize a scalar spelling
//! and a nested prefix of the same conjunction onto one cache entry.

use rayon::prelude::*;

use crate::catalog::{InterestCatalog, InterestId};
use crate::panel::Panel;

/// Filter over the targeting universe: a bitmask of country indices
/// (bit `i` = country `i` of `TARGETING_UNIVERSE`). Bits 50..64 are outside
/// the universe and can never be set: every constructor masks them off, so
/// [`CountryFilter::len`] counts real countries only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountryFilter(u64);

impl CountryFilter {
    /// Bitmask of the 50-country targeting universe.
    const UNIVERSE: u64 = (1 << 50) - 1;

    /// All 50 countries (the paper's "worldwide" query set).
    pub const ALL: CountryFilter = CountryFilter(Self::UNIVERSE);

    /// Filter from a raw bitmask; bits outside the 50-country universe are
    /// dropped.
    pub fn from_bits(bits: u64) -> Self {
        Self(bits & Self::UNIVERSE)
    }

    /// The raw bitmask (bits 50..64 always clear).
    pub fn bits(&self) -> u64 {
        self.0
    }

    /// Filter containing exactly the given country indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is ≥ 50 (outside the targeting universe). Wire-
    /// adjacent callers should use [`CountryFilter::checked_of`] instead,
    /// which reports the offending index without unwinding.
    pub fn of(indices: &[u16]) -> Self {
        match Self::checked_of(indices) {
            Ok(filter) => filter,
            Err(i) => {
                // `checked_of` only errors on an out-of-universe index, so
                // this assert always fires with the documented message.
                assert!(i < 50, "country index {i} outside the 50-country universe");
                Self(0)
            }
        }
    }

    /// Non-panicking [`CountryFilter::of`]: builds the filter, or returns
    /// the first out-of-universe index (≥ 50).
    ///
    /// # Errors
    ///
    /// The first index outside the 50-country targeting universe.
    pub fn checked_of(indices: &[u16]) -> Result<Self, u16> {
        let mut mask = 0u64;
        for &i in indices {
            if i >= 50 {
                return Err(i);
            }
            mask |= 1 << i;
        }
        Ok(Self(mask))
    }

    /// Whether country index `i` passes the filter.
    #[inline]
    pub fn contains(&self, i: u16) -> bool {
        i < 50 && (self.0 >> i) & 1 == 1
    }

    /// Number of countries in the filter.
    pub fn len(&self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the filter is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }
}

/// Monte-Carlo reach estimator over a catalog + panel.
#[derive(Debug, Clone, Copy)]
pub struct ReachEngine<'a> {
    catalog: &'a InterestCatalog,
    panel: &'a Panel,
}

/// The per-user running products of a partially evaluated nested sweep —
/// the resumable state behind prefix-memoized [`ReachEngine::nested_reaches`]
/// queries (see [`ReachEngine::sweep_begin`] / [`ReachEngine::sweep_extend`]).
///
/// One `f64` per panel user; filtered-out users sit at `0.0` and users whose
/// product has underflowed the `1e-300` cutoff are frozen — they stop
/// updating and contribute nothing to deeper prefixes (the freeze-and-drop
/// contract in the module docs), exactly as in the one-shot sweep and the
/// scalar path.
#[derive(Debug, Clone)]
pub struct SweepState {
    products: Vec<f64>,
    filter: CountryFilter,
    depth: usize,
}

impl SweepState {
    /// The country filter the sweep was started with.
    pub fn filter(&self) -> CountryFilter {
        self.filter
    }

    /// Number of interests folded in so far.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Heap footprint of the state in bytes (for cache capacity accounting).
    pub fn heap_bytes(&self) -> usize {
        self.products.len() * std::mem::size_of::<f64>()
    }
}

/// Panel chunk size for rayon sweeps — big enough to amortise task overhead,
/// small enough to parallelise test-scale panels. The chunk partition is
/// independent of the thread count and the engine folds chunk partials in
/// chunk order, so reach values are bit-identical at any `UOF_THREADS`.
///
/// Public because the chunk partition is also the unit of panel
/// **sharding** (see [`crate::shard`]): a shard backend computes the
/// per-chunk partial sums for the chunks it owns, and the router folds
/// them back in ascending chunk index — reproducing the single-node
/// reduction tree exactly. Equals [`crate::index::BLOCK_USERS`], so the
/// posting-list index's block partition lines up with the engine's chunks
/// (pinned by a test).
pub const CHUNK_USERS: usize = 4_096;

/// Internal alias kept for the existing kernel code.
const CHUNK: usize = CHUNK_USERS;

/// Per-chunk scalar kernel: the freeze-and-drop sum of per-user conjunction
/// products over one chunk of panel users (unscaled). This is *the* kernel
/// both [`ReachEngine::conjunction_reach_in`] and
/// [`ReachEngine::conjunction_chunk_partials`] run, so a sharded
/// recomputation is bit-identical to the one-shot path by construction.
fn scalar_chunk_acc(
    chunk: &[crate::panel::PanelUser],
    params: &[(f64, crate::catalog::TopicId)],
    filter: CountryFilter,
    base: f32,
) -> f64 {
    let mut acc = 0.0f64;
    for user in chunk {
        if !filter.contains(user.country) {
            continue;
        }
        // Same per-user rule as the sweeps: multiply while the
        // running product stays above the cutoff; a user frozen
        // before the last interest contributes nothing. (The
        // first multiply always happens — the product starts at
        // 1.0 — so single-interest queries are never dropped.)
        let mut product = 1.0f64;
        let mut live = true;
        for &(score, topic) in params {
            if product > 1e-300 {
                product *= user.carriage_probability(score, topic, base);
            } else {
                live = false;
                break;
            }
        }
        if live {
            acc += product;
        }
    }
    acc
}

/// Per-chunk nested kernel: the freeze-and-drop per-prefix sums over one
/// chunk of panel users (unscaled; element `k` is the chunk's contribution
/// to prefix `k + 1`). Shared by [`ReachEngine::nested_reaches_in`] and
/// [`ReachEngine::nested_chunk_partials`] — same bit-identity argument as
/// [`scalar_chunk_acc`].
fn nested_chunk_acc(
    chunk: &[crate::panel::PanelUser],
    params: &[(f64, crate::catalog::TopicId)],
    filter: CountryFilter,
    base: f32,
) -> Vec<f64> {
    let mut acc = vec![0.0f64; params.len()];
    let mut products = vec![0.0f64; chunk.len()];
    // First interest initialises the running products.
    for (slot, user) in products.iter_mut().zip(chunk) {
        *slot = if filter.contains(user.country) {
            user.carriage_probability(params[0].0, params[0].1, base)
        } else {
            0.0
        };
        acc[0] += *slot;
    }
    for (k, &(score, topic)) in params.iter().enumerate().skip(1) {
        let mut step = 0.0f64;
        for (slot, user) in products.iter_mut().zip(chunk) {
            if *slot > 1e-300 {
                *slot *= user.carriage_probability(score, topic, base);
                step += *slot;
            }
        }
        acc[k] = step;
    }
    acc
}

impl<'a> ReachEngine<'a> {
    /// Creates an engine borrowing the world's catalog and panel.
    pub fn new(catalog: &'a InterestCatalog, panel: &'a Panel) -> Self {
        Self { catalog, panel }
    }

    /// The catalog behind this engine.
    pub fn catalog(&self) -> &'a InterestCatalog {
        self.catalog
    }

    /// Expected audience of a single interest, worldwide.
    pub fn single_reach(&self, id: InterestId) -> f64 {
        self.conjunction_reach(std::slice::from_ref(&id))
    }

    /// Expected audience of the conjunction of `ids`, worldwide.
    ///
    /// An empty conjunction matches everyone (returns the population).
    pub fn conjunction_reach(&self, ids: &[InterestId]) -> f64 {
        self.conjunction_reach_in(ids, CountryFilter::ALL)
    }

    /// Expected audience of the conjunction of `ids` restricted to the
    /// countries in `filter`.
    ///
    /// Applies the freeze-and-drop underflow cutoff (see the module docs):
    /// the value returned for `ids[..k]` is bit-identical to element `k - 1`
    /// of [`ReachEngine::nested_reaches_in`] over any extension of `ids`.
    pub fn conjunction_reach_in(&self, ids: &[InterestId], filter: CountryFilter) -> f64 {
        let _span = uof_telemetry::span!(
            "engine.conjunction_reach",
            interests = ids.len(),
            countries = filter.len(),
        );
        let base = self.panel.base_affinity();
        let params: Vec<(f64, crate::catalog::TopicId)> = ids
            .iter()
            .map(|&id| {
                let i = self.catalog.interest(id);
                (i.score, i.topic)
            })
            .collect();
        let sum: f64 = self
            .panel
            .users()
            .par_chunks(CHUNK)
            .map(|chunk| scalar_chunk_acc(chunk, &params, filter, base))
            .sum();
        sum * self.panel.scale()
    }

    /// Reach of every prefix of `ids`: element `k` is the audience of the
    /// conjunction of the first `k+1` interests. This is the workhorse of
    /// the uniqueness analysis (Section 4.1 queries combinations of
    /// 1..=25 interests per user).
    pub fn nested_reaches(&self, ids: &[InterestId]) -> Vec<f64> {
        self.nested_reaches_in(ids, CountryFilter::ALL)
    }

    /// [`Self::nested_reaches`] with a country filter.
    ///
    /// Element `k` is bit-identical to
    /// `conjunction_reach_in(&ids[..=k], filter)` — both paths share the
    /// freeze-and-drop underflow cutoff, chunk partition, and fold order
    /// (see the module docs).
    pub fn nested_reaches_in(&self, ids: &[InterestId], filter: CountryFilter) -> Vec<f64> {
        if ids.is_empty() {
            return Vec::new();
        }
        let _span = uof_telemetry::span!(
            "engine.nested_reaches",
            interests = ids.len(),
            countries = filter.len(),
        );
        let base = self.panel.base_affinity();
        let params: Vec<(f64, crate::catalog::TopicId)> = ids
            .iter()
            .map(|&id| {
                let i = self.catalog.interest(id);
                (i.score, i.topic)
            })
            .collect();
        let sums: Vec<f64> = self
            .panel
            .users()
            .par_chunks(CHUNK)
            .map(|chunk| nested_chunk_acc(chunk, &params, filter, base))
            .reduce(
                || vec![0.0f64; params.len()],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            );
        sums.into_iter().map(|s| s * self.panel.scale()).collect()
    }

    /// Starts a resumable nested sweep restricted to `filter`: every
    /// in-filter panel user begins with a running product of `1.0`, every
    /// filtered-out user with `0.0`.
    ///
    /// Folding interests into the state with [`ReachEngine::sweep_extend`]
    /// yields exactly the prefix reaches [`ReachEngine::nested_reaches_in`]
    /// would compute — bit-identically, however the sequence is split
    /// across extend calls — because the per-user multiply order, the chunk
    /// partition and the chunk-order reduction are all identical. The state
    /// is what a prefix-memoizing cache stores so a sweep extending an
    /// already-seen prefix only pays for the tail.
    pub fn sweep_begin(&self, filter: CountryFilter) -> SweepState {
        let products = self
            .panel
            .users()
            .iter()
            .map(|user| if filter.contains(user.country) { 1.0 } else { 0.0 })
            .collect();
        SweepState { products, filter, depth: 0 }
    }

    /// Folds `tail` into a sweep, returning the scaled reach of each newly
    /// covered prefix (element `k` = reach of the state's interests plus
    /// `tail[..=k]`) and the advanced state. See [`ReachEngine::sweep_begin`]
    /// for the bit-identity contract.
    ///
    /// # Panics
    ///
    /// Panics if the state was built over a different panel size, or if an
    /// interest id is outside the catalog.
    pub fn sweep_extend(&self, state: &SweepState, tail: &[InterestId]) -> (Vec<f64>, SweepState) {
        let n = self.panel.len();
        assert_eq!(state.products.len(), n, "sweep state does not match this panel");
        if tail.is_empty() {
            return (Vec::new(), state.clone());
        }
        let _span =
            uof_telemetry::span!("engine.sweep_extend", depth = state.depth(), tail = tail.len(),);
        let base = self.panel.base_affinity();
        let params: Vec<(f64, crate::catalog::TopicId)> = tail
            .iter()
            .map(|&id| {
                let i = self.catalog.interest(id);
                (i.score, i.topic)
            })
            .collect();
        let users = self.panel.users();
        let nchunks = n.div_ceil(CHUNK);
        // Same CHUNK partition as `nested_reaches_in`, and `collect`
        // preserves chunk order, so folding the per-chunk partials below in
        // that order reproduces its reduction tree exactly.
        let per_chunk: Vec<(Vec<f64>, Vec<f64>)> = (0..nchunks)
            .into_par_iter()
            .map(|c| {
                let lo = c * CHUNK;
                let hi = ((c + 1) * CHUNK).min(n);
                let chunk = &users[lo..hi];
                let mut slots = state.products[lo..hi].to_vec();
                let mut acc = vec![0.0f64; params.len()];
                for (k, &(score, topic)) in params.iter().enumerate() {
                    let mut step = 0.0f64;
                    for (slot, user) in slots.iter_mut().zip(chunk) {
                        if *slot > 1e-300 {
                            *slot *= user.carriage_probability(score, topic, base);
                            step += *slot;
                        }
                    }
                    acc[k] = step;
                }
                (acc, slots)
            })
            .collect();
        let mut sums = vec![0.0f64; params.len()];
        let mut products = Vec::with_capacity(n);
        for (acc, slots) in per_chunk {
            for (x, y) in sums.iter_mut().zip(&acc) {
                *x += *y;
            }
            products.extend_from_slice(&slots);
        }
        let reaches = sums.into_iter().map(|s| s * self.panel.scale()).collect();
        let next = SweepState { products, filter: state.filter, depth: state.depth + tail.len() };
        (reaches, next)
    }

    /// The global-independence baseline: `Pop · Π (AS_i / Pop)` using the
    /// calibrated single-interest audiences. Ablation only — this is the
    /// model the paper's data refutes.
    pub fn conjunction_reach_independent(&self, ids: &[InterestId]) -> f64 {
        let pop = self.population();
        let mut reach = pop;
        for &id in ids {
            reach *= (self.single_reach(id) / pop).min(1.0);
        }
        reach
    }

    /// Total simulated population (reach of the empty conjunction).
    pub fn population(&self) -> f64 {
        self.panel.scale() * self.panel.len() as f64
    }

    /// Number of [`CHUNK_USERS`]-sized chunks in the panel partition — the
    /// unit of sharding (see [`crate::shard`]).
    pub fn chunk_count(&self) -> usize {
        self.panel.len().div_ceil(CHUNK)
    }

    /// Per-chunk **unscaled** scalar partials for the given global chunk
    /// indices: element `j` is the freeze-and-drop sum of per-user products
    /// over chunk `chunks[j]` — exactly the partial the one-shot path
    /// computes for that chunk.
    ///
    /// Folding the partials of *all* chunks `0..chunk_count()` into an
    /// `0.0`-initialised accumulator in **ascending chunk order** and
    /// multiplying by the panel scale reproduces
    /// [`ReachEngine::conjunction_reach_in`] bit for bit: the kernel is
    /// shared, and the vendored rayon `sum` folds block partials in block
    /// order from `0.0` (and `0.0 + x == x` bitwise for these non-negative
    /// sums). This is the sharding determinism contract the router relies
    /// on.
    ///
    /// # Panics
    ///
    /// Panics if a chunk index is out of range or an interest id is outside
    /// the catalog.
    pub fn conjunction_chunk_partials(
        &self,
        ids: &[InterestId],
        filter: CountryFilter,
        chunks: &[usize],
    ) -> Vec<f64> {
        let _span = uof_telemetry::span!(
            "engine.conjunction_chunk_partials",
            interests = ids.len(),
            chunks = chunks.len(),
        );
        let base = self.panel.base_affinity();
        let params: Vec<(f64, crate::catalog::TopicId)> = ids
            .iter()
            .map(|&id| {
                let i = self.catalog.interest(id);
                (i.score, i.topic)
            })
            .collect();
        let users = self.panel.users();
        let n = users.len();
        let nchunks = self.chunk_count();
        chunks
            .par_chunks(1)
            .map(|slot| {
                let c = slot[0];
                assert!(c < nchunks, "chunk index {c} out of range (panel has {nchunks} chunks)");
                let lo = c * CHUNK;
                let hi = ((c + 1) * CHUNK).min(n);
                scalar_chunk_acc(&users[lo..hi], &params, filter, base)
            })
            .collect()
    }

    /// Per-chunk **unscaled** nested partials for the given global chunk
    /// indices: element `j` holds, for chunk `chunks[j]`, the chunk's
    /// contribution to every prefix of `ids` (inner element `k` → prefix
    /// `k + 1`). Same fold-in-ascending-chunk-order bit-identity contract
    /// as [`ReachEngine::conjunction_chunk_partials`], element-wise against
    /// [`ReachEngine::nested_reaches_in`].
    ///
    /// Returns one empty inner vector per chunk when `ids` is empty.
    ///
    /// # Panics
    ///
    /// Panics if a chunk index is out of range or an interest id is outside
    /// the catalog.
    pub fn nested_chunk_partials(
        &self,
        ids: &[InterestId],
        filter: CountryFilter,
        chunks: &[usize],
    ) -> Vec<Vec<f64>> {
        let _span = uof_telemetry::span!(
            "engine.nested_chunk_partials",
            interests = ids.len(),
            chunks = chunks.len(),
        );
        if ids.is_empty() {
            return vec![Vec::new(); chunks.len()];
        }
        let base = self.panel.base_affinity();
        let params: Vec<(f64, crate::catalog::TopicId)> = ids
            .iter()
            .map(|&id| {
                let i = self.catalog.interest(id);
                (i.score, i.topic)
            })
            .collect();
        let users = self.panel.users();
        let n = users.len();
        let nchunks = self.chunk_count();
        chunks
            .par_chunks(1)
            .map(|slot| {
                let c = slot[0];
                assert!(c < nchunks, "chunk index {c} out of range (panel has {nchunks} chunks)");
                let lo = c * CHUNK;
                let hi = ((c + 1) * CHUNK).min(n);
                nested_chunk_acc(&users[lo..hi], &params, filter, base)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::panel::Panel;

    fn engine_fixture() -> (InterestCatalog, Panel) {
        let cfg = WorldConfig::test_scale(31);
        let catalog = InterestCatalog::generate(&cfg);
        let panel = Panel::generate(&cfg, &catalog);
        (catalog, panel)
    }

    #[test]
    fn empty_conjunction_is_population() {
        let (catalog, panel) = engine_fixture();
        let engine = ReachEngine::new(&catalog, &panel);
        let pop = engine.conjunction_reach(&[]);
        assert!((pop - 10_000_000.0).abs() / 1e7 < 1e-9);
        assert_eq!(pop, engine.population());
    }

    #[test]
    fn reach_monotone_in_conjunction_size() {
        let (catalog, panel) = engine_fixture();
        let engine = ReachEngine::new(&catalog, &panel);
        let ids: Vec<InterestId> = (0..10).map(InterestId).collect();
        let nested = engine.nested_reaches(&ids);
        for w in nested.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "adding an interest must not grow reach: {w:?}");
        }
    }

    #[test]
    fn nested_matches_individual_queries() {
        let (catalog, panel) = engine_fixture();
        let engine = ReachEngine::new(&catalog, &panel);
        let ids: Vec<InterestId> = vec![InterestId(5), InterestId(99), InterestId(500)];
        let nested = engine.nested_reaches(&ids);
        for k in 0..ids.len() {
            let direct = engine.conjunction_reach(&ids[..=k]);
            assert!(
                (nested[k] - direct).abs() / direct.max(1e-12) < 1e-9,
                "prefix {k}: nested {} vs direct {direct}",
                nested[k]
            );
        }
    }

    #[test]
    fn single_reach_positive_and_below_population() {
        let (catalog, panel) = engine_fixture();
        let engine = ReachEngine::new(&catalog, &panel);
        for id in (0..50).map(InterestId) {
            let r = engine.single_reach(id);
            assert!(r > 0.0);
            assert!(r < engine.population());
        }
    }

    #[test]
    fn country_filter_partitions_population() {
        let (catalog, panel) = engine_fixture();
        let engine = ReachEngine::new(&catalog, &panel);
        let id = [InterestId(3)];
        let all = engine.conjunction_reach_in(&id, CountryFilter::ALL);
        let us = engine.conjunction_reach_in(&id, CountryFilter::of(&[0]));
        let rest = engine
            .conjunction_reach_in(&id, CountryFilter::from_bits(CountryFilter::ALL.bits() & !1));
        assert!(us > 0.0);
        assert!(us < all);
        assert!((us + rest - all).abs() / all < 1e-9, "US + rest should equal worldwide");
    }

    #[test]
    fn empty_filter_gives_zero() {
        let (catalog, panel) = engine_fixture();
        let engine = ReachEngine::new(&catalog, &panel);
        assert_eq!(engine.conjunction_reach_in(&[InterestId(0)], CountryFilter::from_bits(0)), 0.0);
    }

    #[test]
    fn independence_baseline_decays_faster() {
        let (catalog, panel) = engine_fixture();
        let engine = ReachEngine::new(&catalog, &panel);
        // Pick interests from one panel user's plausible taste: all from the
        // same topic so the correlated model keeps a sizeable audience.
        let topic = catalog.interest(InterestId(0)).topic;
        let same_topic: Vec<InterestId> =
            catalog.interests().iter().filter(|i| i.topic == topic).take(5).map(|i| i.id).collect();
        assert!(same_topic.len() >= 4, "need a few interests in one topic");
        let correlated = engine.conjunction_reach(&same_topic);
        let independent = engine.conjunction_reach_independent(&same_topic);
        assert!(
            correlated > independent,
            "correlated {correlated} should exceed independent {independent}"
        );
    }

    #[test]
    fn country_filter_helpers() {
        let f = CountryFilter::of(&[0, 3, 49]);
        assert!(f.contains(0));
        assert!(f.contains(3));
        assert!(f.contains(49));
        assert!(!f.contains(1));
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
        assert!(CountryFilter::from_bits(0).is_empty());
        assert_eq!(CountryFilter::ALL.len(), 50);
    }

    #[test]
    fn country_filter_masks_phantom_countries() {
        // Bits 50..64 are outside the 50-country universe: a raw mask with
        // them set must not create phantom countries that `contains` accepts
        // and `len` counts.
        let f = CountryFilter::from_bits(u64::MAX);
        assert_eq!(f.bits(), CountryFilter::ALL.bits());
        assert_eq!(f.len(), 50);
        for i in 50..64 {
            assert!(!f.contains(i), "bit {i} is outside the targeting universe");
        }
        assert!(!CountryFilter::from_bits(1 << 55).contains(55));
        assert!(CountryFilter::from_bits(1 << 55).is_empty());
        assert_eq!(CountryFilter::ALL, CountryFilter::from_bits(CountryFilter::ALL.bits()));
    }

    #[test]
    #[should_panic(expected = "outside the 50-country universe")]
    fn country_filter_rejects_out_of_range() {
        CountryFilter::of(&[50]);
    }

    #[test]
    fn reach_is_bit_identical_across_thread_counts() {
        let (catalog, panel) = engine_fixture();
        let engine = ReachEngine::new(&catalog, &panel);
        let ids: Vec<InterestId> = (0..12).map(|i| InterestId(i * 31)).collect();
        let single_seq = rayon::with_thread_count(1, || engine.conjunction_reach(&ids));
        let nested_seq = rayon::with_thread_count(1, || engine.nested_reaches(&ids));
        for threads in [2, 4, 7] {
            let single = rayon::with_thread_count(threads, || engine.conjunction_reach(&ids));
            assert_eq!(single.to_bits(), single_seq.to_bits(), "{threads} threads");
            let nested = rayon::with_thread_count(threads, || engine.nested_reaches(&ids));
            assert_eq!(nested.len(), nested_seq.len());
            for (a, b) in nested.iter().zip(&nested_seq) {
                assert_eq!(a.to_bits(), b.to_bits(), "{threads} threads");
            }
        }
    }

    #[test]
    fn nested_reaches_empty_input() {
        let (catalog, panel) = engine_fixture();
        let engine = ReachEngine::new(&catalog, &panel);
        assert!(engine.nested_reaches(&[]).is_empty());
    }

    #[test]
    fn sweep_extend_bit_identical_to_one_shot_sweep() {
        let (catalog, panel) = engine_fixture();
        let engine = ReachEngine::new(&catalog, &panel);
        let ids: Vec<InterestId> = (0..14).map(|i| InterestId(i * 29 + 1)).collect();
        for filter in [CountryFilter::ALL, CountryFilter::of(&[0, 3, 17])] {
            let one_shot = engine.nested_reaches_in(&ids, filter);
            // Every split point, including 0 (full extend) and len (no tail).
            for split in 0..=ids.len() {
                let state = engine.sweep_begin(filter);
                let (head, state) = engine.sweep_extend(&state, &ids[..split]);
                let (tail, state) = engine.sweep_extend(&state, &ids[split..]);
                assert_eq!(state.depth(), ids.len());
                let resumed: Vec<f64> = head.into_iter().chain(tail).collect();
                assert_eq!(resumed.len(), one_shot.len());
                for (k, (a, b)) in resumed.iter().zip(&one_shot).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "split {split}, prefix {k}: resumed {a} vs one-shot {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn sweep_extend_bit_identical_across_thread_counts() {
        let (catalog, panel) = engine_fixture();
        let engine = ReachEngine::new(&catalog, &panel);
        let ids: Vec<InterestId> = (0..10).map(|i| InterestId(i * 101)).collect();
        let seq = rayon::with_thread_count(1, || {
            let state = engine.sweep_begin(CountryFilter::ALL);
            let (head, state) = engine.sweep_extend(&state, &ids[..6]);
            let (tail, _) = engine.sweep_extend(&state, &ids[6..]);
            head.into_iter().chain(tail).collect::<Vec<f64>>()
        });
        for threads in [2, 5] {
            let par = rayon::with_thread_count(threads, || {
                let state = engine.sweep_begin(CountryFilter::ALL);
                let (head, state) = engine.sweep_extend(&state, &ids[..6]);
                let (tail, _) = engine.sweep_extend(&state, &ids[6..]);
                head.into_iter().chain(tail).collect::<Vec<f64>>()
            });
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.to_bits(), b.to_bits(), "{threads} threads");
            }
        }
    }

    #[test]
    fn sweep_empty_tail_is_identity() {
        let (catalog, panel) = engine_fixture();
        let engine = ReachEngine::new(&catalog, &panel);
        let state = engine.sweep_begin(CountryFilter::ALL);
        let (reaches, next) = engine.sweep_extend(&state, &[]);
        assert!(reaches.is_empty());
        assert_eq!(next.depth(), 0);
        assert_eq!(next.heap_bytes(), state.heap_bytes());
    }

    #[test]
    fn chunk_partials_fold_bit_identical_to_one_shot_scalar() {
        let (catalog, panel) = engine_fixture();
        let engine = ReachEngine::new(&catalog, &panel);
        let ids: Vec<InterestId> = (0..8).map(|i| InterestId(i * 53 + 2)).collect();
        let nchunks = engine.chunk_count();
        assert!(nchunks >= 2, "fixture panel must span several chunks");
        for filter in [CountryFilter::ALL, CountryFilter::of(&[0, 7])] {
            let want = engine.conjunction_reach_in(&ids, filter);
            // Any shard partition of the chunk set folds back bit-identically
            // when merged in ascending chunk order.
            for shards in [2usize, 3, 5] {
                let mut merged = vec![f64::NAN; nchunks];
                for s in 0..shards {
                    let owned: Vec<usize> = (0..nchunks).filter(|c| c % shards == s).collect();
                    let partials = engine.conjunction_chunk_partials(&ids, filter, &owned);
                    for (c, p) in owned.iter().zip(partials) {
                        merged[*c] = p;
                    }
                }
                let mut acc = 0.0f64;
                for p in merged {
                    assert!(!p.is_nan(), "a chunk was left unowned");
                    acc += p;
                }
                let got = acc * panel.scale();
                assert_eq!(got.to_bits(), want.to_bits(), "{shards} shards");
            }
        }
    }

    #[test]
    fn chunk_partials_fold_bit_identical_to_one_shot_nested() {
        let (catalog, panel) = engine_fixture();
        let engine = ReachEngine::new(&catalog, &panel);
        let ids: Vec<InterestId> = (0..10).map(|i| InterestId(i * 97 + 5)).collect();
        let nchunks = engine.chunk_count();
        let filter = CountryFilter::of(&[0, 3, 17]);
        let want = engine.nested_reaches_in(&ids, filter);
        for shards in [2usize, 4] {
            let mut merged: Vec<Option<Vec<f64>>> = vec![None; nchunks];
            for s in 0..shards {
                let owned: Vec<usize> = (0..nchunks).filter(|c| c % shards == s).collect();
                let partials = engine.nested_chunk_partials(&ids, filter, &owned);
                for (c, p) in owned.iter().zip(partials) {
                    merged[*c] = Some(p);
                }
            }
            let mut acc = vec![0.0f64; ids.len()];
            for p in merged {
                let p = p.expect("a chunk was left unowned");
                for (x, y) in acc.iter_mut().zip(p) {
                    *x += y;
                }
            }
            for (k, (a, b)) in acc.iter().zip(&want).enumerate() {
                let got = a * panel.scale();
                assert_eq!(got.to_bits(), b.to_bits(), "{shards} shards, prefix {k}");
            }
        }
    }

    #[test]
    fn chunk_partials_are_thread_count_invariant() {
        let (catalog, panel) = engine_fixture();
        let engine = ReachEngine::new(&catalog, &panel);
        let ids: Vec<InterestId> = (0..6).map(|i| InterestId(i * 11)).collect();
        let chunks: Vec<usize> = (0..engine.chunk_count()).collect();
        let seq = rayon::with_thread_count(1, || {
            engine.conjunction_chunk_partials(&ids, CountryFilter::ALL, &chunks)
        });
        for threads in [2, 5] {
            let par = rayon::with_thread_count(threads, || {
                engine.conjunction_chunk_partials(&ids, CountryFilter::ALL, &chunks)
            });
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.to_bits(), b.to_bits(), "{threads} threads");
            }
        }
    }

    #[test]
    fn empty_conjunction_chunk_partials_count_filter_membership() {
        let (catalog, panel) = engine_fixture();
        let engine = ReachEngine::new(&catalog, &panel);
        let chunks: Vec<usize> = (0..engine.chunk_count()).collect();
        let partials = engine.conjunction_chunk_partials(&[], CountryFilter::ALL, &chunks);
        let total: f64 = partials.iter().sum();
        assert_eq!((total * panel.scale()).to_bits(), engine.population().to_bits());
        // Nested partials over an empty sequence are empty per chunk.
        let nested = engine.nested_chunk_partials(&[], CountryFilter::ALL, &chunks);
        assert_eq!(nested.len(), chunks.len());
        assert!(nested.iter().all(Vec::is_empty));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn chunk_partials_reject_out_of_range_chunks() {
        let (catalog, panel) = engine_fixture();
        let engine = ReachEngine::new(&catalog, &panel);
        engine.conjunction_chunk_partials(&[InterestId(0)], CountryFilter::ALL, &[usize::MAX]);
    }

    #[test]
    #[should_panic(expected = "does not match this panel")]
    fn sweep_state_panel_mismatch_panics() {
        let (catalog, panel) = engine_fixture();
        let engine = ReachEngine::new(&catalog, &panel);
        let state = SweepState {
            products: vec![1.0; panel.len() + 1],
            filter: CountryFilter::ALL,
            depth: 0,
        };
        engine.sweep_extend(&state, &[InterestId(0)]);
    }
}
