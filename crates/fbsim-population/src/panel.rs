//! The latent Monte-Carlo panel.
//!
//! Reach queries are expectations over the user population. Rather than
//! materialising 1.5B interest lists, the engine keeps a *panel* of latent
//! users — taste, interest-count, country — sampled from the generative
//! model, and evaluates carriage probabilities `p_vi` on the fly:
//!
//! ```text
//! p_vi     = 1 − exp(−s_i · f_v(topic_i) · α_v)
//! f_v(t)   = base + w_v(t) · S_total / S_t        (budget-share affinity)
//! α_v      = n_v / W_v,   W_v = (1 + base) · S_total
//! AS(S)    ≈ (population / panel) · Σ_v Π_{i∈S} p_vi
//! ```
//!
//! The effective taste weights (`w · S_total / S_t`) depend on the catalog's
//! calibrated scores, so they and the `α` column are (re)computed by
//! [`Panel::recompute_alphas`] whenever scores change. Panel rows use
//! fixed-size taste storage to stay cache-friendly — conjunction sweeps
//! touch every row once per added interest.

use fbsim_stats::dist::Log10Normal;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::catalog::{InterestCatalog, TopicId};
use crate::config::WorldConfig;
use crate::countries::CountryAssigner;
use crate::taste::{Taste, TasteSampler, MAX_TASTE_TOPICS};

/// One latent panel user.
#[derive(Debug, Clone)]
pub struct PanelUser {
    /// `n_v / W_v` — precomputed for the current catalog scores.
    pub alpha: f32,
    /// Interest-count budget `n_v`.
    pub n_interests: f32,
    /// Index into [`crate::countries::TARGETING_UNIVERSE`].
    pub country: u16,
    /// Number of taste topics used in the fixed arrays.
    pub taste_len: u8,
    /// Taste topic ids (first `taste_len` entries valid).
    pub taste_topics: [u16; MAX_TASTE_TOPICS],
    /// Raw taste weights (first `taste_len` entries valid; sum to 1).
    pub taste_weights: [f32; MAX_TASTE_TOPICS],
    /// Effective taste weights `w · S_total / S_t` for the current catalog
    /// scores (first `taste_len` entries valid).
    pub taste_eff: [f32; MAX_TASTE_TOPICS],
}

impl PanelUser {
    /// Affinity `f_v(t) = base + w_v(t) · S_total / S_t` using the
    /// precomputed effective weights.
    #[inline]
    pub fn affinity(&self, topic: TopicId, base: f32) -> f32 {
        let mut w = base;
        for k in 0..self.taste_len as usize {
            if self.taste_topics[k] == topic.0 {
                w += self.taste_eff[k];
                break;
            }
        }
        w
    }

    /// Probability this user carries an interest with score `score` in
    /// `topic`.
    #[inline]
    pub fn carriage_probability(&self, score: f64, topic: TopicId, base: f32) -> f64 {
        let w = self.affinity(topic, base) as f64;
        1.0 - (-(score * w * self.alpha as f64)).exp()
    }

    /// The taste as a [`Taste`] value (for materialisation paths).
    pub fn taste(&self) -> Taste {
        Taste::new(
            (0..self.taste_len as usize)
                .map(|k| (TopicId(self.taste_topics[k]), self.taste_weights[k]))
                .collect(),
        )
    }
}

/// The Monte-Carlo panel.
#[derive(Debug, Clone)]
pub struct Panel {
    users: Vec<PanelUser>,
    /// population / panel size.
    scale: f64,
    base_affinity: f32,
    /// Global multiplier on every user's assignment budget. The latent
    /// budget `n` counts assignment *attempts* (with replacement, deduped by
    /// the `1 − exp` saturation), so the realised number of distinct
    /// interests `Σ_i p_vi` falls short of `n`. Calibration raises this
    /// factor until the total realised audience mass matches the Fig.-2
    /// targets.
    budget_factor: f64,
    /// Mutation generation: bumped every time the carriage model changes
    /// (score recalibration, budget rescaling). Serving-layer caches key
    /// their validity on this counter — see `reach-cache`.
    generation: u64,
}

impl Panel {
    /// Samples a panel of `config.panel_size` latent users and computes
    /// their `α` for the given catalog.
    pub fn generate(config: &WorldConfig, catalog: &InterestCatalog) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9A9E_1CAFE);
        let taste_sampler = TasteSampler::new(config);
        let country_assigner = CountryAssigner::new();
        // Panel users follow the *world* interest-count distribution (the
        // cohort's heavier Fig.-1 distribution applies only to FDVT users).
        let count_dist = Log10Normal::from_median(
            config.world_interests_median(),
            config.interests_per_user_sigma,
        );
        let users: Vec<PanelUser> = (0..config.panel_size)
            .map(|_| {
                let taste = taste_sampler.sample(&mut rng);
                let n = count_dist.sample_clamped(
                    &mut rng,
                    config.interests_per_user_min,
                    config.interests_per_user_max,
                );
                let mut taste_topics = [0u16; MAX_TASTE_TOPICS];
                let mut taste_weights = [0f32; MAX_TASTE_TOPICS];
                for (k, &(t, w)) in taste.entries().iter().enumerate() {
                    taste_topics[k] = t.0;
                    taste_weights[k] = w;
                }
                PanelUser {
                    alpha: 0.0,
                    n_interests: n as f32,
                    country: country_assigner.sample_index(&mut rng),
                    taste_len: taste.len() as u8,
                    taste_topics,
                    taste_weights,
                    taste_eff: [0.0; MAX_TASTE_TOPICS],
                }
            })
            .collect();
        let mut panel = Self {
            users,
            scale: config.population as f64 / config.panel_size as f64,
            base_affinity: config.base_affinity as f32,
            budget_factor: 1.0,
            generation: 0,
        };
        panel.recompute_alphas(catalog);
        panel
    }

    /// Multiplies the global budget factor by `ratio` and refreshes `α`.
    /// Used by calibration to close the saturation mass deficit.
    pub fn scale_budget_factor(&mut self, ratio: f64, catalog: &InterestCatalog) {
        assert!(ratio.is_finite() && ratio > 0.0, "budget ratio must be positive");
        self.budget_factor *= ratio;
        self.recompute_alphas(catalog);
    }

    /// The current global budget factor.
    pub fn budget_factor(&self) -> f64 {
        self.budget_factor
    }

    /// The mutation generation: incremented by every
    /// [`Panel::recompute_alphas`] (and hence by every score recalibration
    /// or [`Panel::scale_budget_factor`] call). Two reads of the same reach
    /// query are guaranteed identical while the generation is unchanged, so
    /// query caches use it as their invalidation epoch.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Recomputes each user's effective taste weights and `α = n / W`
    /// against the current catalog scores. Must be called after every
    /// [`InterestCatalog::set_scores`].
    pub fn recompute_alphas(&mut self, catalog: &InterestCatalog) {
        self.generation += 1;
        let base = self.base_affinity as f64;
        let total = catalog.total_score();
        debug_assert!(total > 0.0, "catalog score mass must be positive");
        // W_v = base·S_total + Σ_t (w_t·S_total/S_t)·S_t = (base + 1)·S_total
        // — identical for every user in the budget-share model.
        let w_v = (base + 1.0) * total;
        for user in &mut self.users {
            for k in 0..user.taste_len as usize {
                let s_t = catalog.topic_score_total(TopicId(user.taste_topics[k]));
                // A topic with zero mass (no interests) contributes nothing;
                // its budget share is effectively re-spread as background.
                user.taste_eff[k] = if s_t > 0.0 {
                    (user.taste_weights[k] as f64 * total / s_t) as f32
                } else {
                    0.0
                };
            }
            user.alpha = (self.budget_factor * user.n_interests as f64 / w_v) as f32;
        }
    }

    /// Panel rows.
    pub fn users(&self) -> &[PanelUser] {
        &self.users
    }

    /// Number of panel users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the panel is empty (never true for a generated panel).
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// population / panel-size scale factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Baseline affinity shared by all panel users.
    pub fn base_affinity(&self) -> f32 {
        self.base_affinity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> (WorldConfig, InterestCatalog, Panel) {
        let cfg = WorldConfig::test_scale(11);
        let catalog = InterestCatalog::generate(&cfg);
        let panel = Panel::generate(&cfg, &catalog);
        (cfg, catalog, panel)
    }

    #[test]
    fn panel_has_requested_size_and_scale() {
        let (cfg, _, panel) = small_world();
        assert_eq!(panel.len(), cfg.panel_size as usize);
        let expected = cfg.population as f64 / cfg.panel_size as f64;
        assert!((panel.scale() - expected).abs() < 1e-9);
    }

    #[test]
    fn alphas_positive_after_generation() {
        let (_, _, panel) = small_world();
        assert!(panel.users().iter().all(|u| u.alpha > 0.0));
    }

    #[test]
    fn interest_counts_within_clamp() {
        let (cfg, _, panel) = small_world();
        for u in panel.users() {
            assert!(u.n_interests >= cfg.interests_per_user_min as f32);
            assert!(u.n_interests <= cfg.interests_per_user_max as f32);
        }
    }

    #[test]
    fn expected_interest_count_is_close_to_alpha_times_w() {
        // Σ_i p_vi ≈ Σ_i s_i f_v(t_i) α_v = α_v · W_v = n_v in the linear
        // regime — the Poissonisation consistency check.
        let (_, catalog, panel) = small_world();
        let base = panel.base_affinity();
        let user = &panel.users()[0];
        let total: f64 = catalog
            .interests()
            .iter()
            .map(|i| user.carriage_probability(i.score, i.topic, base))
            .sum();
        let n = user.n_interests as f64;
        // Saturation makes the sum smaller than n, but it should be the
        // same order of magnitude.
        assert!(total > 0.3 * n && total <= n * 1.05, "sum {total}, n {n}");
    }

    #[test]
    fn carriage_probability_bounds() {
        let (_, catalog, panel) = small_world();
        let base = panel.base_affinity();
        for u in panel.users().iter().take(50) {
            for i in catalog.interests().iter().take(50) {
                let p = u.carriage_probability(i.score, i.topic, base);
                assert!((0.0..=1.0).contains(&p), "p={p}");
            }
        }
    }

    #[test]
    fn taste_topics_raise_carriage_probability() {
        let (_, catalog, panel) = small_world();
        let base = panel.base_affinity();
        let user = panel.users().iter().find(|u| u.taste_len > 0).expect("all users have taste");
        let taste_topic = TopicId(user.taste_topics[0]);
        let other_topic = TopicId(
            (0..catalog.n_topics() as u16)
                .find(|&t| (0..user.taste_len as usize).all(|k| user.taste_topics[k] != t))
                .expect("more topics than taste slots"),
        );
        let score = 1_000.0;
        let p_taste = user.carriage_probability(score, taste_topic, base);
        let p_other = user.carriage_probability(score, other_topic, base);
        assert!(p_taste > p_other, "{p_taste} vs {p_other}");
    }

    #[test]
    fn recompute_alphas_tracks_score_changes() {
        let (_, mut catalog, mut panel) = small_world();
        let before: Vec<f32> = panel.users().iter().map(|u| u.alpha).collect();
        // Double every score: W doubles, α halves.
        let scores: Vec<f64> = catalog.interests().iter().map(|i| i.score * 2.0).collect();
        catalog.set_scores(&scores);
        panel.recompute_alphas(&catalog);
        for (u, &b) in panel.users().iter().zip(&before) {
            assert!((u.alpha - b / 2.0).abs() / b < 1e-4);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = WorldConfig::test_scale(21);
        let catalog = InterestCatalog::generate(&cfg);
        let a = Panel::generate(&cfg, &catalog);
        let b = Panel::generate(&cfg, &catalog);
        for (x, y) in a.users().iter().zip(b.users()) {
            assert_eq!(x.alpha, y.alpha);
            assert_eq!(x.country, y.country);
            assert_eq!(x.taste_topics, y.taste_topics);
        }
    }

    #[test]
    fn countries_diverse() {
        let (_, _, panel) = small_world();
        let mut seen: Vec<u16> = panel.users().iter().map(|u| u.country).collect();
        seen.sort_unstable();
        seen.dedup();
        assert!(seen.len() > 20, "expected many countries, got {}", seen.len());
    }
}
