//! Deterministic panel sharding for the router/aggregator serving mode.
//!
//! A sharded reach service runs N backend servers, each answering queries
//! for the subset of the Monte-Carlo panel it *owns*, plus a router that
//! fans a conjunction out and folds the per-shard partials back together.
//! Two properties make the merged answer bit-identical to a single-node
//! evaluation:
//!
//! 1. **The chunk is the shard unit.** The engine already partitions the
//!    panel into [`crate::reach::CHUNK_USERS`]-sized chunks and folds
//!    per-chunk partials in ascending chunk order (the thread-count
//!    determinism contract of [`crate::reach`]). Shards own whole chunks,
//!    return the per-chunk partials tagged with their global chunk index,
//!    and the router folds them in exactly that order — reproducing the
//!    single-node reduction tree, not merely an equivalent sum.
//! 2. **Ownership is a pure function of the seeded world config.** A
//!    chunk's owner is `splitmix64(seed ⊕ domain ⊕ chunk) mod shards`
//!    (the same mixer the posting-list index draws use), so every process
//!    that generated the same [`crate::world::World`] derives the same
//!    assignment without any coordination — the router and each backend
//!    agree on who owns what by construction.
//!
//! The hash-based assignment (rather than contiguous ranges) keeps shard
//! loads statistically balanced even when panel structure correlates with
//! user index (panel generation is country-ordered).

use crate::reach::CHUNK_USERS;
use crate::world::World;

/// Domain-separation constant mixed into the world seed for shard draws,
/// so shard ownership never correlates with the index's membership draws.
const SHARD_DOMAIN: u64 = 0x5AAD_51AB_D0E7_3157;

/// One backend's place in a sharded deployment: `index` of `count` shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This backend's shard index (`0..count`).
    pub index: u32,
    /// Total number of shards in the deployment.
    pub count: u32,
}

impl ShardSpec {
    /// Checks the spec is usable: at least one shard, index in range.
    ///
    /// # Errors
    ///
    /// A human-readable description of the invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.count == 0 {
            return Err("shard count must be at least 1".into());
        }
        if self.index >= self.count {
            return Err(format!("shard index {} out of range (count {})", self.index, self.count));
        }
        Ok(())
    }
}

/// The deterministic chunk→shard ownership map for one world and shard
/// count. See the module docs for the two-property contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardAssignment {
    seed: u64,
    count: u32,
    chunk_count: usize,
}

impl ShardAssignment {
    /// Derives the assignment from a world's seeded config and panel size.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(world: &World, count: u32) -> Self {
        assert!(count > 0, "shard count must be at least 1");
        Self {
            seed: world.config().seed,
            count,
            chunk_count: world.panel().len().div_ceil(CHUNK_USERS),
        }
    }

    /// Total number of shards.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Number of panel chunks being distributed.
    pub fn chunk_count(&self) -> usize {
        self.chunk_count
    }

    /// The shard that owns global chunk `chunk`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is out of range.
    pub fn owner(&self, chunk: usize) -> u32 {
        assert!(
            chunk < self.chunk_count,
            "chunk {chunk} out of range ({} chunks)",
            self.chunk_count
        );
        let mix = crate::index::splitmix64(self.seed ^ SHARD_DOMAIN ^ chunk as u64);
        (mix % u64::from(self.count)) as u32
    }

    /// The global chunk indices shard `shard` owns, ascending. Empty when
    /// the hash happens to assign a small panel's chunks elsewhere — a
    /// valid (idle) shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn chunks_of(&self, shard: u32) -> Vec<usize> {
        assert!(shard < self.count, "shard {shard} out of range (count {})", self.count);
        (0..self.chunk_count).filter(|&c| self.owner(c) == shard).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use std::sync::OnceLock;

    fn world() -> &'static World {
        static WORLD: OnceLock<World> = OnceLock::new();
        WORLD.get_or_init(|| World::generate(WorldConfig::test_scale(23)).unwrap())
    }

    #[test]
    fn shards_partition_the_chunk_set_exactly() {
        for count in [1u32, 2, 3, 5, 8] {
            let assignment = ShardAssignment::new(world(), count);
            let mut seen = vec![0u32; assignment.chunk_count()];
            for s in 0..count {
                for c in assignment.chunks_of(s) {
                    seen[c] += 1;
                    assert_eq!(assignment.owner(c), s);
                }
            }
            assert!(seen.iter().all(|&n| n == 1), "count {count}: {seen:?}");
        }
    }

    #[test]
    fn assignment_is_a_pure_function_of_config() {
        let a = ShardAssignment::new(world(), 3);
        let b = ShardAssignment::new(world(), 3);
        assert_eq!(a, b);
        for c in 0..a.chunk_count() {
            assert_eq!(a.owner(c), b.owner(c));
        }
        // A different seed reshuffles ownership (equal panel size, so any
        // difference must come from the seed).
        let other = World::generate(WorldConfig::test_scale(24)).unwrap();
        let c = ShardAssignment::new(&other, 3);
        assert_eq!(c.chunk_count(), a.chunk_count());
    }

    #[test]
    fn chunks_of_is_ascending() {
        let assignment = ShardAssignment::new(world(), 2);
        for s in 0..2 {
            let chunks = assignment.chunks_of(s);
            assert!(chunks.windows(2).all(|w| w[0] < w[1]), "shard {s}: {chunks:?}");
        }
    }

    #[test]
    fn spec_validation() {
        assert!(ShardSpec { index: 0, count: 1 }.validate().is_ok());
        assert!(ShardSpec { index: 2, count: 3 }.validate().is_ok());
        assert!(ShardSpec { index: 0, count: 0 }.validate().is_err());
        assert!(ShardSpec { index: 3, count: 3 }.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owner_rejects_out_of_range_chunk() {
        ShardAssignment::new(world(), 2).owner(usize::MAX);
    }

    #[test]
    fn engine_chunks_align_with_index_blocks() {
        // The shard unit must line up with both partitions.
        assert_eq!(crate::reach::CHUNK_USERS, crate::index::BLOCK_USERS);
    }
}
