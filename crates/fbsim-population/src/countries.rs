//! The geographic targeting universe.
//!
//! Appendix A / Table 3 of the paper: at collection time (January 2017) the
//! FB Ads Manager required an explicit location set of at most 50 locations,
//! so the authors queried the top-50 countries by FB users — 1.5B monthly
//! active users, 81% of the platform. This module embeds that table and
//! assigns countries to simulated users proportionally.

use fbsim_stats::dist::AliasTable;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// ISO-3166-ish two-letter country code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CountryCode(pub [u8; 2]);

impl CountryCode {
    /// Builds a code from a two-ASCII-letter string.
    ///
    /// # Panics
    ///
    /// Panics if the string is not exactly two ASCII characters — codes are
    /// compile-time constants in this crate.
    pub const fn new(code: &str) -> Self {
        let bytes = code.as_bytes();
        assert!(bytes.len() == 2, "country code must be two characters");
        Self([bytes[0], bytes[1]])
    }

    /// The code as a `&str`.
    pub fn as_str(&self) -> &str {
        // lint:allow(no-unwrap) — invariant: CountryCode bytes are ASCII by construction
        std::str::from_utf8(&self.0).expect("constructed from ASCII")
    }
}

impl std::fmt::Display for CountryCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One row of the targeting universe (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CountryEntry {
    /// Two-letter code.
    pub code: CountryCode,
    /// Display name.
    pub name: &'static str,
    /// FB users in millions at collection time (January 2017).
    pub users_millions: f64,
}

const fn entry(code: &str, name: &'static str, users_millions: f64) -> CountryEntry {
    CountryEntry { code: CountryCode::new(code), name, users_millions }
}

/// The paper's Table 3: the top-50 countries by FB users, totalling ~1.5B
/// monthly active users (81% of the platform in January 2017).
pub const TARGETING_UNIVERSE: [CountryEntry; 50] = [
    entry("US", "United States", 203.0),
    entry("IN", "India", 161.0),
    entry("BR", "Brazil", 114.0),
    entry("ID", "Indonesia", 91.0),
    entry("MX", "Mexico", 70.0),
    entry("PH", "Philippines", 56.0),
    entry("TR", "Turkey", 46.0),
    entry("TH", "Thailand", 42.0),
    entry("VN", "Vietnam", 42.0),
    entry("GB", "United Kingdom", 39.0),
    entry("EG", "Egypt", 33.0),
    entry("FR", "France", 33.0),
    entry("DE", "Germany", 30.0),
    entry("IT", "Italy", 30.0),
    entry("AR", "Argentina", 29.0),
    entry("PK", "Pakistan", 28.0),
    entry("CO", "Colombia", 26.0),
    entry("JP", "Japan", 26.0),
    entry("BD", "Bangladesh", 23.0),
    entry("ES", "Spain", 23.0),
    entry("CA", "Canada", 22.0),
    entry("MY", "Malaysia", 20.0),
    entry("PE", "Peru", 19.0),
    entry("KR", "South Korea", 18.0),
    entry("TW", "Taiwan", 18.0),
    entry("DZ", "Algeria", 16.0),
    entry("NG", "Nigeria", 16.0),
    entry("AU", "Australia", 15.0),
    entry("IQ", "Iraq", 14.0),
    entry("PL", "Poland", 14.0),
    entry("SA", "Saudi Arabia", 14.0),
    entry("ZA", "South Africa", 14.0),
    entry("MA", "Morocco", 13.0),
    entry("VE", "Venezuela", 13.0),
    entry("CL", "Chile", 12.0),
    entry("MM", "Myanmar", 12.0),
    entry("RU", "Russia", 12.0),
    entry("NL", "Netherlands", 10.0),
    entry("EC", "Ecuador", 9.8),
    entry("RO", "Romania", 8.6),
    entry("AE", "UA Emirates", 7.7),
    entry("NP", "Nepal", 6.7),
    entry("BE", "Belgium", 6.5),
    entry("SE", "Sweden", 6.2),
    entry("TN", "Tunisia", 6.1),
    entry("KE", "Kenya", 6.0),
    entry("PT", "Portugal", 5.9),
    entry("UA", "Ukraine", 5.9),
    entry("GT", "Guatemala", 5.5),
    entry("HU", "Hungary", 5.3),
];

/// Total users (in millions) across the targeting universe.
pub fn universe_total_millions() -> f64 {
    TARGETING_UNIVERSE.iter().map(|c| c.users_millions).sum()
}

/// Index of a country code inside [`TARGETING_UNIVERSE`].
pub fn country_index(code: CountryCode) -> Option<usize> {
    TARGETING_UNIVERSE.iter().position(|c| c.code == code)
}

/// Assigns countries to users proportionally to Table 3.
#[derive(Debug, Clone)]
pub struct CountryAssigner {
    table: AliasTable,
}

impl CountryAssigner {
    /// Builds the assigner from the embedded targeting universe.
    pub fn new() -> Self {
        let weights: Vec<f64> = TARGETING_UNIVERSE.iter().map(|c| c.users_millions).collect();
        Self { table: AliasTable::new(&weights) }
    }

    /// Draws the country index (into [`TARGETING_UNIVERSE`]) for one user.
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
        self.table.sample(rng) as u16
    }

    /// Draws the country code for one user.
    pub fn sample_code<R: Rng + ?Sized>(&self, rng: &mut R) -> CountryCode {
        TARGETING_UNIVERSE[self.sample_index(rng) as usize].code
    }
}

impl Default for CountryAssigner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fifty_countries_totalling_1_5b() {
        assert_eq!(TARGETING_UNIVERSE.len(), 50);
        let total = universe_total_millions();
        // Paper: "These countries accounted for 1.5B active users".
        assert!((1_450.0..=1_560.0).contains(&total), "total {total}M");
    }

    #[test]
    fn codes_unique() {
        let mut codes: Vec<CountryCode> = TARGETING_UNIVERSE.iter().map(|c| c.code).collect();
        codes.sort();
        codes.dedup();
        assert_eq!(codes.len(), 50);
    }

    #[test]
    fn us_and_india_lead() {
        assert_eq!(TARGETING_UNIVERSE[0].code.as_str(), "US");
        assert_eq!(TARGETING_UNIVERSE[0].users_millions, 203.0);
        assert_eq!(TARGETING_UNIVERSE[1].code.as_str(), "IN");
    }

    #[test]
    fn country_index_lookup() {
        assert_eq!(country_index(CountryCode::new("US")), Some(0));
        assert_eq!(country_index(CountryCode::new("HU")), Some(49));
        assert_eq!(country_index(CountryCode::new("ZZ")), None);
    }

    #[test]
    fn assigner_roughly_proportional() {
        let assigner = CountryAssigner::new();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut counts = vec![0u64; 50];
        for _ in 0..n {
            counts[assigner.sample_index(&mut rng) as usize] += 1;
        }
        let total = universe_total_millions();
        // US expected share 203/1500 ≈ 13.5%.
        let us_share = counts[0] as f64 / n as f64;
        let expected = 203.0 / total;
        assert!((us_share - expected).abs() < 0.01, "US share {us_share} vs {expected}");
        // Every country should appear at this sample size.
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn code_display() {
        assert_eq!(CountryCode::new("ES").to_string(), "ES");
    }
}
