//! # fbsim-population
//!
//! Synthetic world-population and interest-ecosystem substrate for the
//! *Unique on Facebook* (IMC 2021) reproduction.
//!
//! The paper's measurements run against Facebook's real user base: 1.5B
//! monthly active users across the top-50 countries (Appendix A), each
//! carrying a list of *ad-preference* interests drawn from a ~99k-interest
//! ecosystem. That asset is proprietary, so this crate builds the closest
//! synthetic equivalent — a **latent-topic generative model**:
//!
//! * every interest belongs to one of `T` topics and has a popularity score;
//! * every user has a sparse *taste* over a handful of topics plus a small
//!   baseline affinity for everything else;
//! * the probability that user `u` carries interest `i` is
//!   `p_ui = 1 − exp(−n_u · w_ui / W_u)` with `w_ui = s_i · f_u(topic_i)` —
//!   a Poissonised weighted-without-replacement assignment where `n_u` is
//!   the user's interest-count (Fig. 1 of the paper) and `W_u` normalises
//!   the weights.
//!
//! The same probabilities drive both sides of the reproduction:
//!
//! * **materialisation** — sampling concrete interest lists for the FDVT
//!   cohort (consumed by `fbsim-fdvt`);
//! * **reach estimation** — the expected number of users matching a
//!   conjunction of interests, `AS(S) = scale · Σ_v Π_{i∈S} p_vi`, computed
//!   by Monte Carlo over a panel of latent users (consumed by
//!   `fbsim-adplatform` as the *Potential Reach* oracle).
//!
//! Why a latent-topic model and not independence? Under global independence
//! the audience of a conjunction collapses as `Pop · Π (AS_i / Pop)` — two
//! median interests would already be down to ~120 users, where the paper
//! needs ~12 *random* interests for a 50% chance of uniqueness. Real
//! interest co-occurrence is strongly positively correlated *within a
//! person's tastes*; conditioning on a shared latent taste reproduces that
//! correlation and the paper's slow, log-linear audience decay. The
//! `ablation_independence` bench quantifies the difference.
//!
//! All sampling is seeded; a [`World`] is a pure function of its
//! [`WorldConfig`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calibration;
pub mod catalog;
pub mod cohort;
pub mod config;
pub mod countries;
pub mod index;
pub mod panel;
pub mod reach;
pub mod shard;
pub mod taste;
pub mod world;

pub use catalog::{Interest, InterestCatalog, InterestId, TopicId};
pub use cohort::MaterializedUser;
pub use config::WorldConfig;
pub use countries::{CountryCode, TARGETING_UNIVERSE};
pub use index::{IndexConfig, ReachIndex};
pub use reach::{ReachEngine, SweepState, CHUNK_USERS};
pub use shard::{ShardAssignment, ShardSpec};
pub use world::World;
