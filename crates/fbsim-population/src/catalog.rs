//! Interest catalog: the simulated FB interest ecosystem.
//!
//! Each interest carries a latent popularity *score* (the weight used in
//! assignment and reach computations) and a *target audience* drawn from the
//! Fig.-2 log-normal. Scores start proportional to the target audience and
//! are refined by [`crate::calibration`] so the model's single-interest
//! reach reproduces the target.

use fbsim_stats::dist::{zipf_weights, AliasTable, Log10Normal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::config::WorldConfig;

/// Identifier of an interest in the catalog (dense, `0..n_interests`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InterestId(pub u32);

/// Identifier of a latent topic (dense, `0..n_topics`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TopicId(pub u16);

/// One interest in the simulated ecosystem.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Interest {
    /// Dense identifier.
    pub id: InterestId,
    /// Human-readable name (synthetic).
    pub name: String,
    /// Latent topic the interest belongs to.
    pub topic: TopicId,
    /// Target single-interest audience size drawn from the Fig.-2
    /// distribution — what the calibrated model reach should report.
    pub target_audience: f64,
    /// Calibrated popularity score used by assignment and reach. Before
    /// calibration this is proportional to `target_audience`.
    pub score: f64,
}

/// Topic naming pool — broad FB ad-category names, cycled with an index for
/// topics beyond the pool.
const TOPIC_NAMES: [&str; 30] = [
    "Food & Drink",
    "Sports",
    "Music",
    "Travel",
    "Technology",
    "Fashion",
    "Fitness",
    "Movies",
    "Gaming",
    "Books",
    "Cars",
    "Pets",
    "Photography",
    "Cooking",
    "Outdoors",
    "Business",
    "Science",
    "Art",
    "Parenting",
    "Home & Garden",
    "Finance",
    "Health",
    "Education",
    "News & Politics",
    "Comedy",
    "DIY & Crafts",
    "Beauty",
    "Spirituality",
    "Local Events",
    "Collectibles",
];

/// The simulated interest ecosystem.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterestCatalog {
    interests: Vec<Interest>,
    topic_names: Vec<String>,
    /// Sum of scores per topic (`S_t`), kept in sync with the scores.
    topic_score_totals: Vec<f64>,
    /// Sum of all scores (`S`).
    total_score: f64,
}

impl InterestCatalog {
    /// Generates the catalog described by `config`.
    ///
    /// Topic sizes are Zipf-skewed (a few big topics, a long tail) and
    /// target audiences are i.i.d. draws from the Fig.-2 log-normal,
    /// independent of topic — the paper's interests span the full
    /// popularity range inside every category.
    pub fn generate(config: &WorldConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xCA7A_1060);
        let n_topics = config.n_topics as usize;
        let topic_table = AliasTable::new(&zipf_weights(n_topics, config.topic_zipf_s));
        let audience_dist = Log10Normal::from_quartiles(config.audience_q25, config.audience_q75);
        // Single-interest audiences cannot exceed the population; cap at 20%
        // of it, the ballpark of FB's largest interests relative to MAU.
        let audience_cap = config.population as f64 * 0.2;

        let topic_names: Vec<String> = (0..n_topics)
            .map(|t| {
                let base = TOPIC_NAMES[t % TOPIC_NAMES.len()];
                if t < TOPIC_NAMES.len() {
                    base.to_string()
                } else {
                    format!("{base} #{}", t / TOPIC_NAMES.len() + 1)
                }
            })
            .collect();

        let interests: Vec<Interest> = (0..config.n_interests)
            .map(|id| {
                let topic = topic_table.sample(&mut rng) as u16;
                let target = audience_dist.sample_clamped(&mut rng, 20.0, audience_cap);
                Interest {
                    id: InterestId(id),
                    name: format!("{} interest {}", topic_names[topic as usize], id),
                    topic: TopicId(topic),
                    // Initial score proportional to the target audience;
                    // calibration rescales it.
                    score: target,
                    target_audience: target,
                }
            })
            .collect();

        let mut catalog = Self {
            interests,
            topic_names,
            topic_score_totals: vec![0.0; n_topics],
            total_score: 0.0,
        };
        catalog.recompute_score_totals();
        catalog
    }

    /// Number of interests.
    pub fn len(&self) -> usize {
        self.interests.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.interests.is_empty()
    }

    /// Number of topics.
    pub fn n_topics(&self) -> usize {
        self.topic_score_totals.len()
    }

    /// Looks up an interest.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range — ids are dense and produced by this
    /// catalog, so an out-of-range id is a logic error.
    pub fn interest(&self, id: InterestId) -> &Interest {
        &self.interests[id.0 as usize]
    }

    /// Checked lookup for ids from untrusted input (e.g. the network API).
    pub fn get(&self, id: InterestId) -> Option<&Interest> {
        self.interests.get(id.0 as usize)
    }

    /// All interests.
    pub fn interests(&self) -> &[Interest] {
        &self.interests
    }

    /// Topic display name.
    pub fn topic_name(&self, topic: TopicId) -> &str {
        &self.topic_names[topic.0 as usize]
    }

    /// Sum of scores of interests in `topic` (`S_t`).
    pub fn topic_score_total(&self, topic: TopicId) -> f64 {
        self.topic_score_totals[topic.0 as usize]
    }

    /// Sum of all scores (`S`).
    pub fn total_score(&self) -> f64 {
        self.total_score
    }

    /// Replaces the score of every interest (used by calibration).
    ///
    /// # Panics
    ///
    /// Panics if `scores` has the wrong length or contains a non-positive or
    /// non-finite value.
    pub fn set_scores(&mut self, scores: &[f64]) {
        assert_eq!(scores.len(), self.interests.len(), "score vector length mismatch");
        for (interest, &s) in self.interests.iter_mut().zip(scores) {
            assert!(s.is_finite() && s > 0.0, "scores must be positive and finite");
            interest.score = s;
        }
        self.recompute_score_totals();
    }

    fn recompute_score_totals(&mut self) {
        self.topic_score_totals.iter_mut().for_each(|t| *t = 0.0);
        let mut total = 0.0;
        for interest in &self.interests {
            self.topic_score_totals[interest.topic.0 as usize] += interest.score;
            total += interest.score;
        }
        self.total_score = total;
    }

    /// Per-topic alias tables over interest scores, for sampling a concrete
    /// interest given a topic. Returned alongside the per-topic member lists
    /// so callers can map sampled indices back to [`InterestId`]s.
    pub fn topic_samplers(&self) -> Vec<TopicSampler> {
        let mut members: Vec<Vec<InterestId>> = vec![Vec::new(); self.n_topics()];
        for interest in &self.interests {
            members[interest.topic.0 as usize].push(interest.id);
        }
        members
            .into_iter()
            .map(|ids| {
                if ids.is_empty() {
                    TopicSampler { members: ids, table: None }
                } else {
                    let weights: Vec<f64> = ids.iter().map(|&id| self.interest(id).score).collect();
                    TopicSampler { table: Some(AliasTable::new(&weights)), members: ids }
                }
            })
            .collect()
    }
}

/// Samples interests within one topic proportionally to their scores.
#[derive(Debug, Clone)]
pub struct TopicSampler {
    members: Vec<InterestId>,
    table: Option<AliasTable>,
}

impl TopicSampler {
    /// Interests in this topic.
    pub fn members(&self) -> &[InterestId] {
        &self.members
    }

    /// Draws one interest, or `None` for an empty topic.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<InterestId> {
        self.table.as_ref().map(|t| self.members[t.sample(rng)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_catalog() -> InterestCatalog {
        InterestCatalog::generate(&WorldConfig::test_scale(7))
    }

    #[test]
    fn generates_requested_count() {
        let c = small_catalog();
        assert_eq!(c.len(), 2_000);
        assert_eq!(c.n_topics(), 40);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = InterestCatalog::generate(&WorldConfig::test_scale(9));
        let b = InterestCatalog::generate(&WorldConfig::test_scale(9));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.interests().iter().zip(b.interests()) {
            assert_eq!(x.topic, y.topic);
            assert_eq!(x.target_audience, y.target_audience);
        }
        let c = InterestCatalog::generate(&WorldConfig::test_scale(10));
        assert!(
            a.interests()
                .iter()
                .zip(c.interests())
                .any(|(x, y)| x.target_audience != y.target_audience),
            "different seeds should differ"
        );
    }

    #[test]
    fn audiences_within_bounds() {
        let cfg = WorldConfig::test_scale(3);
        let c = InterestCatalog::generate(&cfg);
        let cap = cfg.population as f64 * 0.2;
        for i in c.interests() {
            assert!(i.target_audience >= 20.0);
            assert!(i.target_audience <= cap);
        }
    }

    #[test]
    fn topic_sizes_are_skewed() {
        let c = small_catalog();
        let mut counts = vec![0usize; c.n_topics()];
        for i in c.interests() {
            counts[i.topic.0 as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max > min * 2, "Zipf topics should be visibly skewed: {max} vs {min}");
    }

    #[test]
    fn score_totals_consistent() {
        let c = small_catalog();
        let manual: f64 = c.interests().iter().map(|i| i.score).sum();
        assert!((c.total_score() - manual).abs() / manual < 1e-12);
        let per_topic: f64 =
            (0..c.n_topics()).map(|t| c.topic_score_total(TopicId(t as u16))).sum();
        assert!((per_topic - manual).abs() / manual < 1e-9);
    }

    #[test]
    fn set_scores_updates_totals() {
        let mut c = small_catalog();
        let scores = vec![2.0; c.len()];
        c.set_scores(&scores);
        assert!((c.total_score() - 2.0 * c.len() as f64).abs() < 1e-9);
        assert_eq!(c.interest(InterestId(0)).score, 2.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn set_scores_rejects_wrong_length() {
        let mut c = small_catalog();
        c.set_scores(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn set_scores_rejects_non_positive() {
        let mut c = small_catalog();
        let mut scores = vec![1.0; c.len()];
        scores[5] = 0.0;
        c.set_scores(&scores);
    }

    #[test]
    fn get_checked_lookup() {
        let c = small_catalog();
        assert!(c.get(InterestId(0)).is_some());
        assert!(c.get(InterestId(u32::MAX)).is_none());
    }

    #[test]
    fn topic_samplers_cover_all_interests() {
        let c = small_catalog();
        let samplers = c.topic_samplers();
        let total: usize = samplers.iter().map(|s| s.members().len()).sum();
        assert_eq!(total, c.len());
        // Sampling returns members of the right topic.
        let mut rng = StdRng::seed_from_u64(1);
        for (t, s) in samplers.iter().enumerate() {
            if let Some(id) = s.sample(&mut rng) {
                assert_eq!(c.interest(id).topic, TopicId(t as u16));
            }
        }
    }

    #[test]
    fn names_include_topic() {
        let c = small_catalog();
        let i = c.interest(InterestId(0));
        assert!(i.name.contains(c.topic_name(i.topic).split(" #").next().unwrap()));
    }
}
