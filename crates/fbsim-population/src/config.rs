//! World-model configuration.
//!
//! The defaults reproduce the paper's January-2017 measurement universe:
//! 1.5B users (top-50 countries, Appendix A), ~99k interests whose
//! single-interest audiences match Fig. 2, and interest-counts per user
//! matching Fig. 1. The latent-taste constants (`n_topics`,
//! `topics_per_user`, `base_affinity`, …) were tuned with the
//! [`crate::calibration`] harness so the conjunction-audience decay matches
//! the paper's fitted `N_P` values (Table 1); see EXPERIMENTS.md for the
//! measured-vs-paper comparison.

use serde::{Deserialize, Serialize};

/// Configuration of the synthetic world.
///
/// Construct with [`WorldConfig::paper_scale`] (defaults matching the paper)
/// or [`WorldConfig::test_scale`] (small and fast for unit tests), then
/// override fields as needed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Total simulated monthly-active-user population (the paper's
    /// uniqueness universe is 1.5B across the top-50 countries).
    pub population: u64,
    /// Number of interests in the catalog (the paper observed 99k unique
    /// interests across its cohort).
    pub n_interests: u32,
    /// Number of latent topics.
    pub n_topics: u32,
    /// Minimum number of taste topics per user.
    pub topics_per_user_min: u32,
    /// Maximum number of taste topics per user (inclusive).
    pub topics_per_user_max: u32,
    /// Baseline affinity for topics outside a user's taste, relative to a
    /// total taste weight of 1. Smaller values mean stronger interest
    /// correlation (audiences shrink more slowly with extra interests from
    /// the same person).
    pub base_affinity: f64,
    /// Skew of topic sizes (Zipf exponent over topic ranks).
    pub topic_zipf_s: f64,
    /// Median interests per **cohort** user (Fig. 1: 426). The FDVT cohort
    /// is self-selected power users; the world-population median is derived
    /// separately (see [`WorldConfig::world_interests_median`]) so that the
    /// total interest mass stays consistent with the Fig.-2 audience sizes.
    pub interests_per_user_median: f64,
    /// log10 standard deviation of interests per user.
    pub interests_per_user_sigma: f64,
    /// Clamp range for interests per user (Fig. 1: 1 – 8,950).
    pub interests_per_user_min: f64,
    /// Upper clamp for interests per user.
    pub interests_per_user_max: f64,
    /// 25th percentile of single-interest audience size (Fig. 2: 113,193).
    pub audience_q25: f64,
    /// 75th percentile of single-interest audience size (Fig. 2: 1,719,925).
    pub audience_q75: f64,
    /// Number of latent panel users used by the Monte-Carlo reach engine.
    /// More panel users = less estimator noise, linearly more CPU.
    pub panel_size: u32,
    /// Rounds of exact iterative-proportional-fitting after the linear
    /// initialisation when calibrating interest scores to their target
    /// audiences.
    pub calibration_rounds: u32,
    /// Master seed. Everything in the world derives from it.
    pub seed: u64,
}

/// Natural-log variance factor converting a log10-parameterised log-normal's
/// median into its mean: `mean = median · exp((σ·ln10)² / 2)`.
fn lognormal_mean_factor(sigma_log10: f64) -> f64 {
    let s = sigma_log10 * std::f64::consts::LN_10;
    (s * s / 2.0).exp()
}

impl WorldConfig {
    /// Defaults matching the paper's measurement universe.
    ///
    /// The taste constants are the calibrated values (see module docs).
    pub fn paper_scale(seed: u64) -> Self {
        Self {
            population: 1_500_000_000,
            n_interests: 99_000,
            n_topics: 150,
            topics_per_user_min: 3,
            topics_per_user_max: 6,
            base_affinity: 0.15,
            topic_zipf_s: 0.8,
            interests_per_user_median: 426.0,
            interests_per_user_sigma: 0.52,
            interests_per_user_min: 1.0,
            interests_per_user_max: 8_950.0,
            audience_q25: 113_193.0,
            audience_q75: 1_719_925.0,
            panel_size: 200_000,
            calibration_rounds: 8,
            seed,
        }
    }

    /// A small, fast world for unit tests: everything scaled down ~100×
    /// while keeping the same qualitative structure.
    pub fn test_scale(seed: u64) -> Self {
        Self {
            population: 10_000_000,
            n_interests: 2_000,
            n_topics: 40,
            topics_per_user_min: 3,
            topics_per_user_max: 6,
            base_affinity: 0.15,
            topic_zipf_s: 0.8,
            interests_per_user_median: 120.0,
            interests_per_user_sigma: 0.4,
            interests_per_user_min: 1.0,
            interests_per_user_max: 1_500.0,
            audience_q25: 50_000.0,
            audience_q75: 500_000.0,
            panel_size: 20_000,
            calibration_rounds: 8,
            seed,
        }
    }

    /// Median interests per **world** user, derived so the ecosystem is
    /// internally consistent.
    ///
    /// In a closed model the total audience mass equals the total interest
    /// mass: `Σ_i AS_i = population · E[interests per user]`. The Fig.-2
    /// audience distribution therefore pins down the world mean; the world
    /// median follows by dividing out the log-normal mean factor. The FDVT
    /// cohort samples its (heavier) interest counts from the Fig.-1
    /// distribution instead — those users are rare-but-legal draws from the
    /// same world model, mirroring the paper's self-selected power users.
    pub fn world_interests_median(&self) -> f64 {
        let mu = (self.audience_q25.log10() + self.audience_q75.log10()) / 2.0;
        const Z75: f64 = 0.674_489_750_196_081_7;
        let sigma_aud = (self.audience_q75.log10() - self.audience_q25.log10()) / (2.0 * Z75);
        let mean_audience = 10f64.powf(mu) * lognormal_mean_factor(sigma_aud);
        let mean_n = self.n_interests as f64 * mean_audience / self.population as f64;
        let median = mean_n / lognormal_mean_factor(self.interests_per_user_sigma);
        median.max(self.interests_per_user_min)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.population == 0 {
            return Err("population must be positive".into());
        }
        if self.n_interests == 0 {
            return Err("catalog must contain at least one interest".into());
        }
        if self.n_topics == 0 {
            return Err("need at least one topic".into());
        }
        if self.topics_per_user_min == 0 || self.topics_per_user_min > self.topics_per_user_max {
            return Err("topics_per_user range must be non-empty and start at >= 1".into());
        }
        if self.topics_per_user_max > self.n_topics {
            return Err("topics_per_user_max cannot exceed n_topics".into());
        }
        if !(self.base_affinity > 0.0 && self.base_affinity.is_finite()) {
            return Err("base_affinity must be positive and finite".into());
        }
        if self.interests_per_user_min < 1.0
            || self.interests_per_user_max < self.interests_per_user_min
        {
            return Err("interests_per_user clamp range invalid".into());
        }
        if !(self.audience_q25 > 0.0 && self.audience_q75 > self.audience_q25) {
            return Err("audience quartiles must satisfy 0 < q25 < q75".into());
        }
        if self.audience_q75 >= self.population as f64 {
            return Err("audience q75 must be below the total population".into());
        }
        if self.panel_size == 0 {
            return Err("panel must contain at least one user".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_is_valid() {
        assert_eq!(WorldConfig::paper_scale(1).validate(), Ok(()));
    }

    #[test]
    fn test_scale_is_valid() {
        assert_eq!(WorldConfig::test_scale(1).validate(), Ok(()));
    }

    #[test]
    fn paper_scale_matches_paper_constants() {
        let c = WorldConfig::paper_scale(0);
        assert_eq!(c.population, 1_500_000_000);
        assert_eq!(c.n_interests, 99_000);
        assert_eq!(c.interests_per_user_median, 426.0);
        assert_eq!(c.audience_q25, 113_193.0);
        assert_eq!(c.audience_q75, 1_719_925.0);
    }

    #[test]
    fn validation_catches_each_violation() {
        let base = WorldConfig::test_scale(0);
        let cases: Vec<(WorldConfig, &str)> = vec![
            (WorldConfig { population: 0, ..base.clone() }, "population"),
            (WorldConfig { n_interests: 0, ..base.clone() }, "catalog"),
            (WorldConfig { n_topics: 0, ..base.clone() }, "topic"),
            (WorldConfig { topics_per_user_min: 0, ..base.clone() }, "topics_per_user"),
            (
                WorldConfig { topics_per_user_min: 7, topics_per_user_max: 6, ..base.clone() },
                "topics_per_user",
            ),
            (WorldConfig { topics_per_user_max: 10_000, ..base.clone() }, "n_topics"),
            (WorldConfig { base_affinity: 0.0, ..base.clone() }, "base_affinity"),
            (WorldConfig { base_affinity: f64::NAN, ..base.clone() }, "base_affinity"),
            (WorldConfig { interests_per_user_min: 0.0, ..base.clone() }, "clamp"),
            (WorldConfig { audience_q25: 0.0, ..base.clone() }, "quartiles"),
            (WorldConfig { audience_q75: 1e12, ..base.clone() }, "below the total population"),
            (WorldConfig { panel_size: 0, ..base.clone() }, "panel"),
        ];
        for (cfg, needle) in cases {
            let err = cfg.validate().unwrap_err();
            assert!(err.contains(needle), "expected '{needle}' in '{err}'");
        }
    }

    #[test]
    fn world_median_is_below_cohort_median() {
        // The FDVT cohort is heavier than the average user in both the
        // paper (426 vs unknown world median) and the model.
        for cfg in [WorldConfig::paper_scale(0), WorldConfig::test_scale(0)] {
            let world = cfg.world_interests_median();
            assert!(world >= cfg.interests_per_user_min);
            assert!(
                world < cfg.interests_per_user_median,
                "world median {world} should be below cohort median {}",
                cfg.interests_per_user_median
            );
        }
    }

    #[test]
    fn paper_scale_world_median_near_hundred() {
        // Σ AS_i / population with Fig.-2 audiences gives ≈223 mean interests
        // per world user, i.e. a median near 109 at σ=0.52.
        let m = WorldConfig::paper_scale(0).world_interests_median();
        assert!((90.0..130.0).contains(&m), "world median {m}");
    }

    #[test]
    fn serde_round_trip() {
        let c = WorldConfig::paper_scale(42);
        let json = serde_json::to_string(&c).unwrap();
        let back: WorldConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
