//! Score calibration: making the model's single-interest audiences match
//! their Fig.-2 targets.
//!
//! Interest scores start proportional to their target audiences, but the
//! actual model audience of interest `i`,
//! `AS(i) = scale · Σ_v (1 − exp(−s_i · f_v(t_i) · α_v))`,
//! also depends on the topic's fan base and on saturation. Calibration runs
//! a few rounds of iterative proportional fitting (IPF):
//!
//! ```text
//! s_i ← s_i · target_i / AS_current(i)
//! ```
//!
//! recomputing the panel's `α` column between rounds (scores enter the
//! normaliser `W_v`).
//!
//! Computing `AS(i)` exactly for every interest would cost
//! `O(n_interests · panel)`. Instead each topic's panel is split into *fans*
//! (users with the topic in their taste — few, large probability) and
//! *background* (everyone else — many, small probability `1 − exp(−s·b_v)`
//! with `b_v = base·α_v` a per-user constant). Background users are binned
//! into a fine log-spaced histogram over `b_v` once per round; the
//! background sum then costs one `exp` per bin instead of one per user. The
//! per-topic fan contribution is summed exactly, with the fans' background
//! term subtracted so nobody is double-counted.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::catalog::{InterestCatalog, TopicId};
use crate::panel::Panel;

/// Outcome of a calibration run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// IPF rounds performed.
    pub rounds: u32,
    /// Median of `|AS − target| / target` across interests after the final
    /// round.
    pub median_rel_error: f64,
    /// 95th percentile of the relative error after the final round.
    pub p95_rel_error: f64,
}

/// Number of log-spaced histogram bins over `b_v = base·α_v`. The spread of
/// `b` comes from the interest-count log-normal (a few decades); 512 bins
/// keep the binning error well below 0.1%.
const B_BINS: usize = 512;

/// A log-spaced value histogram: `(mean value, count)` per non-empty bin.
/// Summing `count · (1 − exp(−s·value))` over the bins approximates the same
/// sum over the original values to within the bin width (≈ span/bins in log
/// space — far below 1% at the default resolutions).
#[derive(Debug, Clone, Default)]
struct ValueBins {
    bins: Vec<(f64, f64)>,
}

impl ValueBins {
    fn build(values: &[f64], n_bins: usize) -> Self {
        let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
        for &v in values {
            debug_assert!(v > 0.0, "binned values must be positive");
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if values.is_empty() {
            return Self::default();
        }
        let span = (hi / lo).log10().max(1e-9);
        let mut sums = vec![0.0f64; n_bins];
        let mut counts = vec![0.0f64; n_bins];
        for &v in values {
            let idx = ((((v / lo).log10() / span) * n_bins as f64) as usize).min(n_bins - 1);
            sums[idx] += v;
            counts[idx] += 1.0;
        }
        Self {
            bins: sums
                .into_iter()
                .zip(counts)
                .filter(|&(_, c)| c > 0.0)
                .map(|(s, c)| (s / c, c))
                .collect(),
        }
    }

    /// `Σ count · (1 − exp(−s · value))`.
    fn saturated_sum(&self, s: f64) -> f64 {
        self.bins.iter().map(|&(v, c)| c * (1.0 - (-(s * v)).exp())).sum()
    }
}

/// Bins for the per-topic fan histograms.
const FAN_BINS: usize = 128;

/// Binned panel geometry for one calibration (or measurement) pass:
/// a global background histogram over `b_v = base·α_v`, and per-topic fan
/// histograms over the fans' full affinity values `y_v = f_v(t)·α_v` plus
/// their background values `b_v` (so fans can be swapped from the background
/// into their exact-affinity term without double counting).
struct TopicGeometry {
    /// Background `b_v` over all panel users.
    global: ValueBins,
    /// Per topic: fans' `y_v = (base + eff)·α_v`.
    fan_affinity: Vec<ValueBins>,
    /// Per topic: fans' `b_v = base·α_v` (to subtract from the global sum).
    fan_background: Vec<ValueBins>,
}

impl TopicGeometry {
    fn build(panel: &Panel, n_topics: usize) -> Self {
        let base = panel.base_affinity() as f64;
        let mut fan_y: Vec<Vec<f64>> = vec![Vec::new(); n_topics];
        let mut fan_b: Vec<Vec<f64>> = vec![Vec::new(); n_topics];
        let bs: Vec<f64> = panel
            .users()
            .iter()
            .map(|user| {
                let b = base * user.alpha as f64;
                for slot in 0..user.taste_len as usize {
                    let t = user.taste_topics[slot] as usize;
                    let y = (base + user.taste_eff[slot] as f64) * user.alpha as f64;
                    fan_y[t].push(y);
                    fan_b[t].push(b);
                }
                b
            })
            .collect();
        Self {
            global: ValueBins::build(&bs, B_BINS),
            fan_affinity: fan_y.iter().map(|v| ValueBins::build(v, FAN_BINS)).collect(),
            fan_background: fan_b.iter().map(|v| ValueBins::build(v, FAN_BINS)).collect(),
        }
    }

    /// Model audience of an interest with `score` in `topic`.
    fn audience(&self, panel: &Panel, score: f64, topic: TopicId) -> f64 {
        let t = topic.0 as usize;
        let sum = self.global.saturated_sum(score) + self.fan_affinity[t].saturated_sum(score)
            - self.fan_background[t].saturated_sum(score);
        sum * panel.scale()
    }
}

/// Computes the current model audience of every interest (exact fans +
/// Taylor background). Used by calibration, Fig.-2 regeneration and tests.
pub fn measured_single_audiences(catalog: &InterestCatalog, panel: &Panel) -> Vec<f64> {
    let geometry = TopicGeometry::build(panel, catalog.n_topics());
    catalog.interests().par_iter().map(|i| geometry.audience(panel, i.score, i.topic)).collect()
}

/// Runs `rounds` of IPF so each interest's model audience approaches its
/// `target_audience`, mutating the catalog scores and the panel `α`s.
///
/// Per-interest update factors are clamped to `[0.1, 10]` per round for
/// stability, and a global budget factor is adjusted each round to close
/// the saturation mass deficit (see [`Panel::scale_budget_factor`]).
pub fn calibrate_scores(
    catalog: &mut InterestCatalog,
    panel: &mut Panel,
    rounds: u32,
) -> CalibrationReport {
    let mut report =
        CalibrationReport { rounds, median_rel_error: f64::NAN, p95_rel_error: f64::NAN };
    for round in 0..rounds.max(1) {
        let current = measured_single_audiences(catalog, panel);
        let is_last = round + 1 == rounds.max(1);
        if is_last {
            let mut errors: Vec<f64> = catalog
                .interests()
                .iter()
                .zip(&current)
                .map(|(i, &c)| (c - i.target_audience).abs() / i.target_audience)
                .collect();
            errors.sort_by(|a, b| a.total_cmp(b));
            report.median_rel_error = errors[errors.len() / 2];
            report.p95_rel_error = errors[(errors.len() as f64 * 0.95) as usize % errors.len()];
        }
        if round < rounds {
            // Close the global saturation deficit first: scale everyone's
            // assignment budget so total realised mass matches total target
            // mass, then rebalance per-interest scores multiplicatively.
            let mass_current: f64 = current.iter().sum();
            let mass_target: f64 = catalog.interests().iter().map(|i| i.target_audience).sum();
            if mass_current > 0.0 {
                panel.scale_budget_factor((mass_target / mass_current).clamp(0.5, 2.0), catalog);
            }
            let new_scores: Vec<f64> = catalog
                .interests()
                .iter()
                .zip(&current)
                .map(|(i, &c)| {
                    let factor =
                        if c > 0.0 { (i.target_audience / c).clamp(0.1, 10.0) } else { 5.0 };
                    i.score * factor
                })
                .collect();
            catalog.set_scores(&new_scores);
            panel.recompute_alphas(catalog);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::reach::ReachEngine;

    fn calibrated_fixture() -> (InterestCatalog, Panel, CalibrationReport) {
        let cfg = WorldConfig::test_scale(77);
        let mut catalog = InterestCatalog::generate(&cfg);
        let mut panel = Panel::generate(&cfg, &catalog);
        let report = calibrate_scores(&mut catalog, &mut panel, cfg.calibration_rounds);
        (catalog, panel, report)
    }

    #[test]
    fn calibration_reduces_error() {
        let cfg = WorldConfig::test_scale(78);
        let mut catalog = InterestCatalog::generate(&cfg);
        let mut panel = Panel::generate(&cfg, &catalog);
        // Error before any IPF round.
        let before = measured_single_audiences(&catalog, &panel);
        let mut errs_before: Vec<f64> = catalog
            .interests()
            .iter()
            .zip(&before)
            .map(|(i, &c)| (c - i.target_audience).abs() / i.target_audience)
            .collect();
        errs_before.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median_before = errs_before[errs_before.len() / 2];

        let report = calibrate_scores(&mut catalog, &mut panel, 8);
        assert!(
            report.median_rel_error < median_before,
            "calibration should improve: {} -> {}",
            median_before,
            report.median_rel_error
        );
        assert!(report.median_rel_error < 0.15, "median error {}", report.median_rel_error);
    }

    #[test]
    fn measured_audience_matches_reach_engine() {
        // The Taylor-background shortcut must agree with the exact
        // Monte-Carlo engine (which loops over all panel users).
        let (catalog, panel, _) = calibrated_fixture();
        let engine = ReachEngine::new(&catalog, &panel);
        let measured = measured_single_audiences(&catalog, &panel);
        for id in [0u32, 17, 333, 1500] {
            let exact = engine.single_reach(crate::catalog::InterestId(id));
            let fast = measured[id as usize];
            assert!(
                (exact - fast).abs() / exact.max(1.0) < 1e-3,
                "interest {id}: engine {exact} vs geometry {fast}"
            );
        }
    }

    #[test]
    fn calibrated_audiences_track_targets() {
        let (catalog, panel, report) = calibrated_fixture();
        assert!(report.p95_rel_error < 0.5, "p95 error {}", report.p95_rel_error);
        let measured = measured_single_audiences(&catalog, &panel);
        // Spot-check some interests across the popularity range.
        let mut checked = 0;
        for (i, &m) in catalog.interests().iter().zip(&measured).step_by(97) {
            let rel = (m - i.target_audience).abs() / i.target_audience;
            assert!(rel < 1.0, "interest {:?}: measured {m} target {}", i.id, i.target_audience);
            checked += 1;
        }
        assert!(checked > 10);
    }

    #[test]
    fn report_fields_are_finite() {
        let (_, _, report) = calibrated_fixture();
        assert!(report.median_rel_error.is_finite());
        assert!(report.p95_rel_error.is_finite());
        assert_eq!(report.rounds, 8);
    }
}
