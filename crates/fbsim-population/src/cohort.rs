//! Materialised users: concrete interest lists for the FDVT cohort.
//!
//! Panel users stay latent (probabilities only); cohort users are *drawn* —
//! the simulator's equivalent of the 2,390 real people whose ad-preference
//! lists the FDVT browser extension harvested. A materialised user samples
//! `n` concrete interests without replacement, two-stage:
//!
//! 1. topic `t` with probability ∝ `f_u(t) · S_t` (affinity × topic score
//!    mass) — the same weights the latent carriage probabilities use;
//! 2. an interest within `t` proportional to its score.
//!
//! Duplicates are rejected; if a user's interest budget approaches the
//! catalog's supply for their taste the loop falls back to sequentially
//! filling from their taste topics, so generation always terminates.

use fbsim_stats::dist::{AliasTable, Log10Normal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::catalog::{InterestCatalog, InterestId, TopicId, TopicSampler};
use crate::config::WorldConfig;
use crate::countries::CountryAssigner;
use crate::taste::{Taste, TasteSampler};

/// A user with a concrete, materialised interest list.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaterializedUser {
    /// The user's latent taste.
    pub taste: Taste,
    /// Index into [`crate::countries::TARGETING_UNIVERSE`].
    pub country: u16,
    /// The materialised interest list (unordered).
    pub interests: Vec<InterestId>,
}

impl MaterializedUser {
    /// The user's interests sorted ascending by target audience — the order
    /// the paper's Least-Popular selection strategy needs.
    pub fn interests_by_audience(&self, catalog: &InterestCatalog) -> Vec<InterestId> {
        let mut sorted = self.interests.clone();
        sorted.sort_by(|&a, &b| {
            catalog
                .interest(a)
                .target_audience
                .total_cmp(&catalog.interest(b).target_audience)
                .then(a.cmp(&b))
        });
        sorted
    }
}

/// Generates materialised users from the world model.
pub struct Materializer<'a> {
    catalog: &'a InterestCatalog,
    config: &'a WorldConfig,
    taste_sampler: TasteSampler,
    country_assigner: CountryAssigner,
    topic_samplers: Vec<TopicSampler>,
    cohort_count_dist: Log10Normal,
}

impl<'a> Materializer<'a> {
    /// Builds a materialiser over a (calibrated) catalog.
    pub fn new(config: &'a WorldConfig, catalog: &'a InterestCatalog) -> Self {
        Self {
            catalog,
            config,
            taste_sampler: TasteSampler::new(config),
            country_assigner: CountryAssigner::new(),
            topic_samplers: catalog.topic_samplers(),
            cohort_count_dist: Log10Normal::from_median(
                config.interests_per_user_median,
                config.interests_per_user_sigma,
            ),
        }
    }

    /// Materialises one cohort user with the Fig.-1 (cohort) interest-count
    /// distribution.
    pub fn sample_user<R: Rng + ?Sized>(&self, rng: &mut R) -> MaterializedUser {
        let n = self
            .cohort_count_dist
            .sample_clamped(
                rng,
                self.config.interests_per_user_min,
                self.config.interests_per_user_max,
            )
            .round()
            .max(1.0) as usize;
        self.sample_user_with_count(rng, n)
    }

    /// Materialises one user with an explicit interest count.
    pub fn sample_user_with_count<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n: usize,
    ) -> MaterializedUser {
        let taste = self.taste_sampler.sample(rng);
        let country = self.country_assigner.sample_index(rng);
        let interests = self.sample_interests(rng, &taste, n);
        MaterializedUser { taste, country, interests }
    }

    /// Fully customised materialisation: optional interest count (defaults
    /// to a cohort-distribution draw) and optional taste topic-count range
    /// (defaults to the world config's range). Used by the FDVT cohort
    /// generator, which controls demographics separately.
    pub fn sample_user_customized<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        count: Option<usize>,
        topics_range: Option<(u32, u32)>,
    ) -> MaterializedUser {
        let taste = match topics_range {
            Some((min, max)) => self.taste_sampler.sample_with_range(rng, min, max),
            None => self.taste_sampler.sample(rng),
        };
        let n = count.unwrap_or_else(|| {
            self.cohort_count_dist
                .sample_clamped(
                    rng,
                    self.config.interests_per_user_min,
                    self.config.interests_per_user_max,
                )
                .round()
                .max(1.0) as usize
        });
        let country = self.country_assigner.sample_index(rng);
        let interests = self.sample_interests(rng, &taste, n);
        MaterializedUser { taste, country, interests }
    }

    /// Draws `n` distinct interests for `taste`.
    fn sample_interests<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        taste: &Taste,
        n: usize,
    ) -> Vec<InterestId> {
        let base = self.config.base_affinity;
        // Budget-share topic weights: f_u(t)·S_t = base·S_t + w_u(t)·S_total.
        let total = self.catalog.total_score();
        let weights: Vec<f64> = (0..self.catalog.n_topics())
            .map(|t| {
                let topic = TopicId(t as u16);
                base * self.catalog.topic_score_total(topic) + taste.weight(topic) as f64 * total
            })
            .collect();
        let n = n.min(self.catalog.len());
        let topic_table = AliasTable::new(&weights);
        let mut chosen: Vec<InterestId> = Vec::with_capacity(n);
        let mut seen = vec![false; self.catalog.len()];
        let max_attempts = n.saturating_mul(30).max(1_000);
        let mut attempts = 0usize;
        while chosen.len() < n && attempts < max_attempts {
            attempts += 1;
            let t = topic_table.sample(rng);
            let Some(id) = self.topic_samplers[t].sample(rng) else {
                continue;
            };
            if !seen[id.0 as usize] {
                seen[id.0 as usize] = true;
                chosen.push(id);
            }
        }
        // Fallback: fill deterministically from the user's taste topics,
        // most-preferred first, then the rest of the catalog.
        if chosen.len() < n {
            let mut topic_order: Vec<usize> = (0..weights.len()).collect();
            topic_order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]));
            'outer: for t in topic_order {
                for &id in self.topic_samplers[t].members() {
                    if !seen[id.0 as usize] {
                        seen[id.0 as usize] = true;
                        chosen.push(id);
                        if chosen.len() == n {
                            break 'outer;
                        }
                    }
                }
            }
        }
        chosen
    }

    /// Materialises a whole cohort deterministically from a seed.
    pub fn sample_cohort(&self, size: usize, seed: u64) -> Vec<MaterializedUser> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0_0047);
        (0..size).map(|_| self.sample_user(&mut rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (WorldConfig, InterestCatalog) {
        let cfg = WorldConfig::test_scale(55);
        let catalog = InterestCatalog::generate(&cfg);
        (cfg, catalog)
    }

    #[test]
    fn interests_are_distinct_and_counted() {
        let (cfg, catalog) = fixture();
        let m = Materializer::new(&cfg, &catalog);
        let mut rng = StdRng::seed_from_u64(1);
        let user = m.sample_user_with_count(&mut rng, 200);
        assert_eq!(user.interests.len(), 200);
        let mut ids = user.interests.clone();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 200, "interests must be distinct");
    }

    #[test]
    fn count_clamped_to_catalog_size() {
        let (cfg, catalog) = fixture();
        let m = Materializer::new(&cfg, &catalog);
        let mut rng = StdRng::seed_from_u64(2);
        let user = m.sample_user_with_count(&mut rng, 10_000_000);
        assert_eq!(user.interests.len(), catalog.len());
    }

    #[test]
    fn taste_topics_dominate_interest_lists() {
        let (cfg, catalog) = fixture();
        let m = Materializer::new(&cfg, &catalog);
        let mut rng = StdRng::seed_from_u64(3);
        // Keep the demanded count well below the taste topics' supply so
        // the share is not forced down by topic exhaustion.
        let user = m.sample_user_with_count(&mut rng, 60);
        let taste_topics: Vec<u16> = user.taste.entries().iter().map(|&(t, _)| t.0).collect();
        let in_taste = user
            .interests
            .iter()
            .filter(|&&id| taste_topics.contains(&catalog.interest(id).topic.0))
            .count();
        let share = in_taste as f64 / user.interests.len() as f64;
        // Budget-share model: taste mass 1 vs background mass base ≈ 0.15,
        // so the expected taste share is ≈ 1/1.15 ≈ 87%.
        assert!(share > 0.5, "taste share {share}");
    }

    #[test]
    fn interests_by_audience_is_sorted() {
        let (cfg, catalog) = fixture();
        let m = Materializer::new(&cfg, &catalog);
        let mut rng = StdRng::seed_from_u64(4);
        let user = m.sample_user_with_count(&mut rng, 50);
        let sorted = user.interests_by_audience(&catalog);
        assert_eq!(sorted.len(), 50);
        for w in sorted.windows(2) {
            assert!(
                catalog.interest(w[0]).target_audience <= catalog.interest(w[1]).target_audience
            );
        }
    }

    #[test]
    fn cohort_deterministic_for_seed() {
        let (cfg, catalog) = fixture();
        let m = Materializer::new(&cfg, &catalog);
        let a = m.sample_cohort(20, 99);
        let b = m.sample_cohort(20, 99);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.interests, y.interests);
            assert_eq!(x.country, y.country);
        }
        let c = m.sample_cohort(20, 100);
        assert!(a.iter().zip(&c).any(|(x, y)| x.interests != y.interests));
    }

    #[test]
    fn cohort_interest_counts_follow_cohort_distribution() {
        let (cfg, catalog) = fixture();
        let m = Materializer::new(&cfg, &catalog);
        let cohort = m.sample_cohort(300, 5);
        let mut counts: Vec<f64> = cohort.iter().map(|u| u.interests.len() as f64).collect();
        counts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = counts[counts.len() / 2];
        // Cohort median configured at 120 for the test scale.
        assert!((60.0..240.0).contains(&median), "median {median}");
    }

    #[test]
    fn fallback_fills_when_budget_is_large() {
        // A count close to the catalog size forces the rejection loop into
        // the deterministic fallback; the result must still be distinct and
        // complete.
        let (cfg, catalog) = fixture();
        let m = Materializer::new(&cfg, &catalog);
        let mut rng = StdRng::seed_from_u64(6);
        let n = catalog.len() - 10;
        let user = m.sample_user_with_count(&mut rng, n);
        assert_eq!(user.interests.len(), n);
        let mut ids = user.interests.clone();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }
}
