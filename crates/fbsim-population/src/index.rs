//! The bit-packed posting-list reach index — sampled conjunction counts as
//! AND-chains over `u64` blocks.
//!
//! The float engine in [`crate::reach`] answers a conjunction by walking the
//! whole Monte-Carlo panel and multiplying carriage probabilities — ~25
//! `exp` calls per user per 25-interest query. This module trades the
//! expected-value semantics for a **materialized membership draw**: each
//! (user, interest) pair gets one deterministic Bernoulli draw
//! `member ⇔ u(user, interest) < p_vi`, where `u` is a counter-free hash of
//! the world seed and the pair (independent of thread count and build
//! order), and `p_vi` is exactly [`crate::panel::PanelUser::carriage_probability`].
//! Per-interest membership is stored bit-packed; a conjunction then costs an
//! AND-chain with `count_ones()` — a handful of words per 4,096 users
//! instead of a float pipeline per user, which is what makes 1M+ panels and
//! a high-traffic reach service feasible (ROADMAP item 1).
//!
//! # Layout
//!
//! The panel is cut into blocks of [`BLOCK_USERS`] users. Each interest's
//! posting list stores one container per block, roaring-style:
//!
//! * **dense** — a 64-word (`BLOCK_USERS / 64`) bitmap, when the block holds
//!   [`SPARSE_MAX`] or more members;
//! * **sparse** — a sorted `Vec<u16>` of in-block user offsets otherwise
//!   (2 bytes per member beats 512 bytes of bitmap below 256 members).
//!
//! Conjunctions materialize the first operand into a panel-wide dense
//! accumulator (8 KiB per 64k users — L1-resident), AND the remaining
//! posting lists into it block by block, and pop-count the survivors. A
//! [`CountryFilter`] is applied first via precomputed per-country bitmaps,
//! and an all-zero accumulator short-circuits the chain.
//!
//! # Determinism and epochs
//!
//! The draw for a pair is a pure function of `(world seed, user, interest)`:
//! rebuilding the index — at any `UOF_THREADS`, in any interest order, for
//! any subset of interests — reproduces identical bits. Because the draws
//! are **common random numbers** across model mutations, a mutation that
//! raises every `p_vi` (e.g. [`crate::world::World::scale_budget_factor`]
//! with ratio > 1) grows each membership set monotonically. An index is
//! stamped with the [`crate::world::World::generation`] it was built under;
//! [`ReachIndex::is_current`] is the staleness probe, and the generation
//! counter is the same epoch the `reach-cache` invalidates on, so one
//! mutation event retires both layers.
//!
//! # When to use which oracle
//!
//! The float engine returns the *expectation* of the audience over the
//! latent model — noise-free, the right oracle for calibration and for the
//! paper's `N_P` fits. The index returns the audience of one *realized*
//! panel draw — exact integer semantics (cross-checked against a boolean
//! reference scan bit-for-bit), statistically consistent with the
//! expectation at `O(1/√count)` relative error, and orders of magnitude
//! faster. Serving layers that need throughput opt in via `UOF_REACH_INDEX`
//! (read only by [`IndexConfig::from_env`]).

use rayon::prelude::*;

use crate::catalog::{InterestCatalog, InterestId};
use crate::panel::Panel;
use crate::reach::CountryFilter;
use crate::world::World;

/// Users per posting-list block (64 `u64` words).
pub const BLOCK_USERS: usize = 4_096;

/// Words per full block.
const BLOCK_WORDS: usize = BLOCK_USERS / 64;

/// Blocks with fewer members than this store a sorted offset list instead
/// of a bitmap (2 bytes × members < 8 bytes × words).
pub const SPARSE_MAX: usize = 256;

/// Opt-in switch for the sampled-count index, honouring the workspace
/// env-contract: only [`IndexConfig::from_env`] reads the environment;
/// explicitly constructed configs are immune to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexConfig {
    /// Whether index-backed sampled counts are offered at all.
    pub enabled: bool,
}

impl Default for IndexConfig {
    /// Disabled: the expected-value float engine stays the default oracle.
    fn default() -> Self {
        Self { enabled: false }
    }
}

impl IndexConfig {
    /// Reads `UOF_REACH_INDEX`: `1`/`true`/`on`/`yes` (case-insensitive)
    /// enables the index; anything else — including absence — leaves it
    /// disabled.
    pub fn from_env() -> Self {
        let enabled = match std::env::var("UOF_REACH_INDEX") {
            Ok(raw) => {
                matches!(raw.trim().to_ascii_lowercase().as_str(), "1" | "true" | "on" | "yes")
            }
            Err(_) => false,
        };
        Self { enabled }
    }

    /// An explicitly enabled configuration.
    pub fn enabled() -> Self {
        Self { enabled: true }
    }

    /// An explicitly disabled configuration.
    pub fn disabled() -> Self {
        Self { enabled: false }
    }
}

/// One block's membership, dense or sparse (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Container {
    /// Bitmap over the block's users (last block may be short).
    Dense(Vec<u64>),
    /// Sorted in-block user offsets.
    Sparse(Vec<u16>),
}

impl Container {
    fn heap_bytes(&self) -> usize {
        match self {
            Container::Dense(words) => words.len() * std::mem::size_of::<u64>(),
            Container::Sparse(offsets) => offsets.len() * std::mem::size_of::<u16>(),
        }
    }
}

/// Bit-packed panel membership of one interest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostingList {
    containers: Vec<Container>,
    members: u64,
}

impl PostingList {
    /// Packs a block-aligned member bitmap into containers.
    fn from_words(words: &[u64], panel_len: usize) -> Self {
        let mut containers = Vec::with_capacity(panel_len.div_ceil(BLOCK_USERS));
        let mut members = 0u64;
        for (b, block) in words.chunks(BLOCK_WORDS).enumerate() {
            let count: u32 = block.iter().map(|w| w.count_ones()).sum();
            members += u64::from(count);
            if (count as usize) < SPARSE_MAX {
                let mut offsets = Vec::with_capacity(count as usize);
                for (w, &word) in block.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let bit = bits.trailing_zeros() as usize;
                        offsets.push((w * 64 + bit) as u16);
                        bits &= bits - 1;
                    }
                }
                containers.push(Container::Sparse(offsets));
            } else {
                containers.push(Container::Dense(block.to_vec()));
            }
            debug_assert!(b * BLOCK_USERS < panel_len);
        }
        Self { containers, members }
    }

    /// Total members across the panel.
    pub fn members(&self) -> u64 {
        self.members
    }

    /// Heap footprint of the containers in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.containers.iter().map(Container::heap_bytes).sum()
    }

    /// `(dense, sparse)` container counts — layout diagnostics for the
    /// bench report.
    pub fn container_mix(&self) -> (usize, usize) {
        let dense = self.containers.iter().filter(|c| matches!(c, Container::Dense(_))).count();
        (dense, self.containers.len() - dense)
    }

    /// ANDs this posting list into a panel-wide word accumulator.
    fn intersect_into(&self, acc: &mut [u64]) {
        for (b, container) in self.containers.iter().enumerate() {
            let lo = b * BLOCK_WORDS;
            match container {
                Container::Dense(words) => {
                    for (slot, &word) in acc[lo..lo + words.len()].iter_mut().zip(words) {
                        *slot &= word;
                    }
                }
                Container::Sparse(offsets) => {
                    let hi = (lo + BLOCK_WORDS).min(acc.len());
                    let block = &mut acc[lo..hi];
                    let mut mask = [0u64; BLOCK_WORDS];
                    for &off in offsets {
                        mask[off as usize / 64] |= 1u64 << (off % 64);
                    }
                    for (slot, word) in block.iter_mut().zip(mask) {
                        *slot &= word;
                    }
                }
            }
        }
    }

    /// Expands into a panel-wide word accumulator (chain head).
    fn expand_into(&self, acc: &mut [u64]) {
        acc.fill(0);
        for (b, container) in self.containers.iter().enumerate() {
            let lo = b * BLOCK_WORDS;
            match container {
                Container::Dense(words) => {
                    acc[lo..lo + words.len()].copy_from_slice(words);
                }
                Container::Sparse(offsets) => {
                    for &off in offsets {
                        acc[lo + off as usize / 64] |= 1u64 << (off % 64);
                    }
                }
            }
        }
    }
}

/// SplitMix64 finalizer — the statistically solid single-round mixer.
/// Crate-visible: the shard-assignment hash (see [`crate::shard`]) reuses
/// it so shard ownership is a pure function of the seeded world config.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The uniform variate in `[0, 1)` for a (user, interest) pair — a pure
/// function of the draw seed and the pair, so rebuilds at any thread count
/// or interest order reproduce it exactly, and mutations of the carriage
/// model reuse the same draw (common random numbers).
#[inline]
fn pair_uniform(draw_seed: u64, user: u32, interest: u32) -> f64 {
    let key = (u64::from(user) << 32) | u64::from(interest);
    let bits = splitmix64(draw_seed ^ splitmix64(key));
    (bits >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0) // 2^-53
}

/// Domain-separation constant mixed into the world seed for draws.
const DRAW_DOMAIN: u64 = 0xB17_9AC4_0E51;

/// The bit-packed posting-list index over a world's panel.
///
/// Built for all interests ([`ReachIndex::build`]) or a subset
/// ([`ReachIndex::build_for`]); queries over unbuilt interests return
/// `None`. See the module docs for layout and the determinism contract.
#[derive(Debug, Clone)]
pub struct ReachIndex {
    draw_seed: u64,
    generation: u64,
    panel_len: usize,
    scale: f64,
    /// Posting list per catalog interest id; `None` when not built.
    postings: Vec<Option<PostingList>>,
    /// Dense per-country membership bitmaps (country index 0..50).
    countries: Vec<Vec<u64>>,
    built: usize,
}

impl ReachIndex {
    /// Builds posting lists for **every** catalog interest. Parallel over
    /// interests; the result is independent of the thread count.
    pub fn build(world: &World) -> Self {
        let all: Vec<InterestId> = world.catalog().interests().iter().map(|i| i.id).collect();
        Self::build_for(world, &all)
    }

    /// Builds posting lists for `ids` only — the demand-driven mode a
    /// serving layer or bench uses when the query set is known. Duplicate
    /// ids are built once.
    ///
    /// # Panics
    ///
    /// Panics if an id is outside the catalog (same contract as the float
    /// engine's catalog lookup).
    pub fn build_for(world: &World, ids: &[InterestId]) -> Self {
        let catalog = world.catalog();
        let panel = world.panel();
        let draw_seed = world.config().seed ^ DRAW_DOMAIN;
        let _span = uof_telemetry::span!("engine.index_build", interests = ids.len(),);
        let mut postings: Vec<Option<PostingList>> = vec![None; catalog.len()];
        let built_lists: Vec<(u32, PostingList)> = ids
            .par_chunks(1)
            .map(|pair| {
                let id = pair[0];
                (id.0, materialize_interest(catalog, panel, draw_seed, id))
            })
            .collect();
        let mut built = 0;
        for (raw, list) in built_lists {
            let slot = &mut postings[raw as usize];
            if slot.is_none() {
                built += 1;
            }
            *slot = Some(list);
        }
        let word_len = panel.len().div_ceil(64);
        let mut countries = vec![vec![0u64; word_len]; 50];
        for (v, user) in panel.users().iter().enumerate() {
            countries[user.country as usize][v / 64] |= 1u64 << (v % 64);
        }
        Self {
            draw_seed,
            generation: world.generation(),
            panel_len: panel.len(),
            scale: panel.scale(),
            postings,
            countries,
            built,
        }
    }

    /// Materializes posting lists for any of `ids` not yet built — the
    /// demand-driven growth path a serving layer uses so each query only
    /// pays for interests it has never seen. Already-built ids are
    /// untouched, so the incremental result is bit-identical to a fresh
    /// [`ReachIndex::build_for`] over the union (the draws are pure
    /// functions of the pair).
    ///
    /// The caller must pass the **same world** the index was built from
    /// (checked by generation; a stale index must be rebuilt, not
    /// extended).
    ///
    /// # Panics
    ///
    /// Panics if `world` has moved to a different generation, or if an id
    /// is outside the catalog.
    pub fn extend_for(&mut self, world: &World, ids: &[InterestId]) {
        assert!(
            self.is_current(world),
            "cannot extend a stale index (index generation {}, world generation {})",
            self.generation,
            world.generation()
        );
        let catalog = world.catalog();
        let panel = world.panel();
        let missing: Vec<InterestId> = {
            let mut seen = vec![false; catalog.len()];
            ids.iter()
                .filter(|id| {
                    let raw = id.0 as usize;
                    let fresh = self.postings[raw].is_none() && !seen[raw];
                    if fresh {
                        seen[raw] = true;
                    }
                    fresh
                })
                .copied()
                .collect()
        };
        if missing.is_empty() {
            return;
        }
        let _span = uof_telemetry::span!("engine.index_extend", interests = missing.len(),);
        let draw_seed = self.draw_seed;
        let built: Vec<(u32, PostingList)> = missing
            .par_chunks(1)
            .map(|pair| {
                let id = pair[0];
                (id.0, materialize_interest(catalog, panel, draw_seed, id))
            })
            .collect();
        for (raw, list) in built {
            self.postings[raw as usize] = Some(list);
            self.built += 1;
        }
    }

    /// The [`World::generation`] this index was materialized under.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The seed all membership draws derive from (world seed ⊕ domain tag).
    pub fn draw_seed(&self) -> u64 {
        self.draw_seed
    }

    /// Whether the index still reflects the world's carriage model — the
    /// same epoch probe the reach-cache invalidates on.
    pub fn is_current(&self, world: &World) -> bool {
        self.generation == world.generation()
    }

    /// Number of interests with a materialized posting list.
    pub fn built_interests(&self) -> usize {
        self.built
    }

    /// Panel size the index covers.
    pub fn panel_len(&self) -> usize {
        self.panel_len
    }

    /// population / panel scale factor (for sampled-reach estimates).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The posting list of `id`, if built.
    pub fn posting(&self, id: InterestId) -> Option<&PostingList> {
        self.postings.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// Heap footprint of all posting lists plus country bitmaps, in bytes.
    pub fn heap_bytes(&self) -> usize {
        let posting: usize = self.postings.iter().flatten().map(PostingList::heap_bytes).sum();
        let country: usize =
            self.countries.iter().map(|w| w.len() * std::mem::size_of::<u64>()).sum();
        posting + country
    }

    /// Exact number of panel members carrying **every** interest in `ids`
    /// within `filter`, or `None` if any interest lacks a posting list (or
    /// is outside the catalog). The empty conjunction counts the filter's
    /// panel membership. Bit-exact: equal to [`boolean_reference_count`]
    /// over the same world, at any thread count.
    pub fn conjunction_count(&self, ids: &[InterestId], filter: CountryFilter) -> Option<u64> {
        let _span = uof_telemetry::span!(
            "engine.index_count",
            interests = ids.len(),
            countries = filter.len(),
        );
        let acc = self.conjunction_words(ids, filter)?;
        Some(acc.iter().map(|w| u64::from(w.count_ones())).sum())
    }

    /// The panel-wide survivor bitmap of a conjunction under `filter`, or
    /// `None` if any interest lacks a posting list. An all-zero accumulator
    /// short-circuits the AND-chain but still returns the (zeroed) words so
    /// per-block callers see a complete bitmap.
    fn conjunction_words(&self, ids: &[InterestId], filter: CountryFilter) -> Option<Vec<u64>> {
        let word_len = self.panel_len.div_ceil(64);
        let mut acc = vec![0u64; word_len];
        match ids.split_first() {
            None => self.filter_words_into(filter, &mut acc),
            Some((&head, tail)) => {
                self.posting(head)?.expand_into(&mut acc);
                mask_panel_tail(&mut acc, self.panel_len);
                if !self.apply_filter(filter, &mut acc) {
                    acc.fill(0);
                    return Some(acc);
                }
                for &id in tail {
                    let list = self.posting(id)?;
                    list.intersect_into(&mut acc);
                    if acc.iter().all(|&w| w == 0) {
                        return Some(acc);
                    }
                }
            }
        }
        Some(acc)
    }

    /// Per-block conjunction counts for the [`BLOCK_USERS`]-sized blocks in
    /// `blocks` (global block indices), or `None` if any interest lacks a
    /// posting list. `result[k]` counts survivors inside block `blocks[k]`;
    /// summing the counts of **all** blocks equals
    /// [`ReachIndex::conjunction_count`] exactly — the sharding contract
    /// (index blocks coincide with the float engine's
    /// [`crate::reach::CHUNK_USERS`] chunks, so a shard owning a chunk set
    /// serves the same rows under either oracle).
    ///
    /// # Panics
    ///
    /// Panics if a block index is out of range.
    pub fn conjunction_count_in_blocks(
        &self,
        ids: &[InterestId],
        filter: CountryFilter,
        blocks: &[usize],
    ) -> Option<Vec<u64>> {
        let _span = uof_telemetry::span!(
            "engine.index_count_blocks",
            interests = ids.len(),
            blocks = blocks.len(),
        );
        let nblocks = self.panel_len.div_ceil(BLOCK_USERS);
        let acc = self.conjunction_words(ids, filter)?;
        Some(
            blocks
                .iter()
                .map(|&b| {
                    assert!(
                        b < nblocks,
                        "block index {b} out of range (panel has {nblocks} blocks)"
                    );
                    let lo = b * BLOCK_WORDS;
                    let hi = (lo + BLOCK_WORDS).min(acc.len());
                    acc[lo..hi].iter().map(|w| u64::from(w.count_ones())).sum()
                })
                .collect(),
        )
    }

    /// The sampled-count reach estimate: `conjunction_count × scale`, the
    /// index's answer to the float engine's
    /// [`crate::reach::ReachEngine::conjunction_reach_in`].
    pub fn sampled_reach(&self, ids: &[InterestId], filter: CountryFilter) -> Option<f64> {
        self.conjunction_count(ids, filter).map(|n| n as f64 * self.scale)
    }

    /// Fills `acc` with the filter's membership bitmap.
    fn filter_words_into(&self, filter: CountryFilter, acc: &mut [u64]) {
        acc.fill(0);
        if filter == CountryFilter::ALL {
            acc.fill(u64::MAX);
            mask_panel_tail(acc, self.panel_len);
            return;
        }
        for (c, words) in self.countries.iter().enumerate() {
            if filter.contains(c as u16) {
                for (slot, &word) in acc.iter_mut().zip(words) {
                    *slot |= word;
                }
            }
        }
    }

    /// ANDs the filter into `acc`; returns `false` when the result is
    /// already empty (worldwide filters are a no-op).
    fn apply_filter(&self, filter: CountryFilter, acc: &mut [u64]) -> bool {
        if filter == CountryFilter::ALL {
            return true;
        }
        let mut union = vec![0u64; acc.len()];
        self.filter_words_into(filter, &mut union);
        for (slot, word) in acc.iter_mut().zip(union) {
            *slot &= word;
        }
        acc.iter().any(|&w| w != 0)
    }
}

/// Zeroes the bits past the panel length in the last word.
fn mask_panel_tail(acc: &mut [u64], panel_len: usize) {
    let tail = panel_len % 64;
    if tail != 0 {
        if let Some(last) = acc.last_mut() {
            *last &= (1u64 << tail) - 1;
        }
    }
}

/// Materializes one interest's membership draws into a posting list.
fn materialize_interest(
    catalog: &InterestCatalog,
    panel: &Panel,
    draw_seed: u64,
    id: InterestId,
) -> PostingList {
    let interest = catalog.interest(id);
    let base = panel.base_affinity();
    let panel_len = panel.len();
    let mut words = vec![0u64; panel_len.div_ceil(64)];
    for (v, user) in panel.users().iter().enumerate() {
        let p = user.carriage_probability(interest.score, interest.topic, base);
        if pair_uniform(draw_seed, v as u32, id.0) < p {
            words[v / 64] |= 1u64 << (v % 64);
        }
    }
    PostingList::from_words(&words, panel_len)
}

/// The boolean reference scan the index is cross-checked against: walks the
/// panel user by user, evaluating the **same** membership draws the index
/// materializes, and counts users carrying every interest within `filter`.
/// `ReachIndex::conjunction_count` must equal this exactly, for any subset
/// of interests, any filter, and any thread count.
///
/// # Panics
///
/// Panics if an id is outside the catalog.
pub fn boolean_reference_count(world: &World, ids: &[InterestId], filter: CountryFilter) -> u64 {
    let catalog = world.catalog();
    let panel = world.panel();
    let draw_seed = world.config().seed ^ DRAW_DOMAIN;
    let base = panel.base_affinity();
    let params: Vec<(u32, f64, crate::catalog::TopicId)> = ids
        .iter()
        .map(|&id| {
            let i = catalog.interest(id);
            (id.0, i.score, i.topic)
        })
        .collect();
    let mut count = 0u64;
    for (v, user) in panel.users().iter().enumerate() {
        if !filter.contains(user.country) {
            continue;
        }
        let carries_all = params.iter().all(|&(raw, score, topic)| {
            let p = user.carriage_probability(score, topic, base);
            pair_uniform(draw_seed, v as u32, raw) < p
        });
        if carries_all {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use std::sync::OnceLock;

    fn world() -> &'static World {
        static WORLD: OnceLock<World> = OnceLock::new();
        WORLD.get_or_init(|| {
            let mut cfg = WorldConfig::test_scale(77);
            cfg.n_interests = 600;
            cfg.panel_size = 9_000; // not a multiple of 64 or 4096: tail coverage
            World::generate(cfg).unwrap()
        })
    }

    fn index() -> &'static ReachIndex {
        static INDEX: OnceLock<ReachIndex> = OnceLock::new();
        INDEX.get_or_init(|| ReachIndex::build(world()))
    }

    #[test]
    fn index_counts_match_boolean_reference_scan() {
        let idx = index();
        let cases: Vec<Vec<InterestId>> = vec![
            vec![],
            vec![InterestId(0)],
            vec![InterestId(3), InterestId(17)],
            (0..8).map(|i| InterestId(i * 71 % 600)).collect(),
            (0..25).map(|i| InterestId(i * 23 % 600)).collect(),
        ];
        for filter in [CountryFilter::ALL, CountryFilter::of(&[0]), CountryFilter::of(&[1, 7, 31])]
        {
            for ids in &cases {
                let got = idx.conjunction_count(ids, filter).expect("all interests built");
                let want = boolean_reference_count(world(), ids, filter);
                assert_eq!(got, want, "ids {ids:?} filter {:#x}", filter.bits());
            }
        }
    }

    #[test]
    fn index_counts_identical_across_thread_counts() {
        let ids: Vec<InterestId> = (0..12).map(|i| InterestId(i * 31 % 600)).collect();
        let base_count = index().conjunction_count(&ids, CountryFilter::ALL);
        for threads in [1, 2, 5] {
            let rebuilt =
                rayon::with_thread_count(threads, || ReachIndex::build_for(world(), &ids));
            assert_eq!(rebuilt.conjunction_count(&ids, CountryFilter::ALL), base_count);
            // The materialized bits themselves are identical, not just the
            // final count.
            for &id in &ids {
                assert_eq!(rebuilt.posting(id), index().posting(id), "interest {id:?}");
            }
        }
    }

    #[test]
    fn empty_conjunction_counts_filter_membership() {
        let idx = index();
        assert_eq!(idx.conjunction_count(&[], CountryFilter::ALL), Some(idx.panel_len() as u64));
        let us = idx.conjunction_count(&[], CountryFilter::of(&[0])).expect("built");
        let panel_us = world().panel().users().iter().filter(|u| u.country == 0).count() as u64;
        assert_eq!(us, panel_us);
        assert_eq!(idx.conjunction_count(&[], CountryFilter::from_bits(0)), Some(0));
    }

    #[test]
    fn block_counts_sum_to_conjunction_count() {
        let idx = index();
        let nblocks = idx.panel_len().div_ceil(BLOCK_USERS);
        let all_blocks: Vec<usize> = (0..nblocks).collect();
        let cases: Vec<Vec<InterestId>> = vec![
            vec![],
            vec![InterestId(3), InterestId(17)],
            (0..8).map(|i| InterestId(i * 71 % 600)).collect(),
        ];
        for filter in [CountryFilter::ALL, CountryFilter::of(&[0]), CountryFilter::of(&[1, 7, 31])]
        {
            for ids in &cases {
                let per_block =
                    idx.conjunction_count_in_blocks(ids, filter, &all_blocks).expect("built");
                assert_eq!(per_block.len(), nblocks);
                let total: u64 = per_block.iter().sum();
                assert_eq!(
                    Some(total),
                    idx.conjunction_count(ids, filter),
                    "ids {ids:?} filter {:#x}",
                    filter.bits()
                );
                // A subset query returns the same per-block values.
                let subset = [nblocks - 1, 0];
                let got = idx.conjunction_count_in_blocks(ids, filter, &subset).expect("built");
                assert_eq!(got, vec![per_block[nblocks - 1], per_block[0]]);
            }
        }
    }

    #[test]
    fn block_counts_report_missing_postings() {
        let idx = ReachIndex::build_for(world(), &[InterestId(1)]);
        assert_eq!(
            idx.conjunction_count_in_blocks(
                &[InterestId(1), InterestId(2)],
                CountryFilter::ALL,
                &[0]
            ),
            None
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_counts_reject_out_of_range_blocks() {
        let idx = index();
        let nblocks = idx.panel_len().div_ceil(BLOCK_USERS);
        let _ = idx.conjunction_count_in_blocks(&[], CountryFilter::ALL, &[nblocks]);
    }

    #[test]
    fn country_filters_partition_counts() {
        let idx = index();
        let ids = [InterestId(5)];
        let all = idx.conjunction_count(&ids, CountryFilter::ALL).expect("built");
        let us = idx.conjunction_count(&ids, CountryFilter::of(&[0])).expect("built");
        let rest = idx
            .conjunction_count(&ids, CountryFilter::from_bits(CountryFilter::ALL.bits() & !1))
            .expect("built");
        assert_eq!(us + rest, all);
    }

    #[test]
    fn sampled_reach_statistically_consistent_with_float_engine() {
        // The index realizes one Bernoulli draw per pair, so a count with
        // expectation E has ~√E noise; compare within 6σ (plus a small
        // absolute guard for near-floor audiences).
        let idx = index();
        let engine = world().reach_engine();
        let scale = idx.scale();
        for raw in [0u32, 9, 50, 200, 599] {
            let ids = [InterestId(raw)];
            let expectation = engine.conjunction_reach_in(&ids, CountryFilter::ALL) / scale;
            let count = idx.conjunction_count(&ids, CountryFilter::ALL).expect("built") as f64;
            let sigma = expectation.sqrt().max(1.0);
            assert!(
                (count - expectation).abs() <= 6.0 * sigma + 3.0,
                "interest {raw}: count {count} vs expectation {expectation}"
            );
        }
        // A correlated 2-interest conjunction keeps a sizeable audience.
        let topic = world().catalog().interest(InterestId(0)).topic;
        let same_topic: Vec<InterestId> = world()
            .catalog()
            .interests()
            .iter()
            .filter(|i| i.topic == topic)
            .take(2)
            .map(|i| i.id)
            .collect();
        let expectation = engine.conjunction_reach_in(&same_topic, CountryFilter::ALL) / scale;
        let count = idx.conjunction_count(&same_topic, CountryFilter::ALL).expect("built") as f64;
        let sigma = expectation.sqrt().max(1.0);
        assert!(
            (count - expectation).abs() <= 6.0 * sigma + 3.0,
            "conjunction: count {count} vs expectation {expectation}"
        );
    }

    #[test]
    fn partial_build_answers_built_and_declines_missing() {
        let built = [InterestId(1), InterestId(2)];
        let idx = ReachIndex::build_for(world(), &built);
        assert_eq!(idx.built_interests(), 2);
        assert!(idx.conjunction_count(&built, CountryFilter::ALL).is_some());
        assert_eq!(idx.conjunction_count(&[InterestId(3)], CountryFilter::ALL), None);
        assert_eq!(
            idx.conjunction_count(&[InterestId(1), InterestId(3)], CountryFilter::ALL),
            None
        );
        assert!(idx.posting(InterestId(3)).is_none());
        // Out-of-catalog ids decline rather than panic.
        assert_eq!(idx.conjunction_count(&[InterestId(60_000)], CountryFilter::ALL), None);
    }

    #[test]
    fn incremental_extension_is_bit_identical_to_fresh_build() {
        let a = [InterestId(10), InterestId(20)];
        let b = [InterestId(20), InterestId(30), InterestId(30)];
        let mut grown = ReachIndex::build_for(world(), &a);
        grown.extend_for(world(), &b);
        assert_eq!(grown.built_interests(), 3);
        let union = [InterestId(10), InterestId(20), InterestId(30)];
        let fresh = ReachIndex::build_for(world(), &union);
        for &id in &union {
            assert_eq!(grown.posting(id), fresh.posting(id), "interest {id:?}");
        }
        assert_eq!(
            grown.conjunction_count(&union, CountryFilter::ALL),
            fresh.conjunction_count(&union, CountryFilter::ALL)
        );
        // Extending with already-built ids is a no-op.
        grown.extend_for(world(), &a);
        assert_eq!(grown.built_interests(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot extend a stale index")]
    fn extending_a_stale_index_panics() {
        let mut w = World::generate(WorldConfig::test_scale(47)).unwrap();
        let mut idx = ReachIndex::build_for(&w, &[InterestId(0)]);
        w.scale_budget_factor(2.0);
        idx.extend_for(&w, &[InterestId(1)]);
    }

    #[test]
    fn duplicate_ids_in_build_and_query_are_harmless() {
        let ids = [InterestId(4), InterestId(4), InterestId(4)];
        let idx = ReachIndex::build_for(world(), &ids);
        assert_eq!(idx.built_interests(), 1);
        let single = idx.conjunction_count(&[InterestId(4)], CountryFilter::ALL);
        assert_eq!(idx.conjunction_count(&ids, CountryFilter::ALL), single);
    }

    #[test]
    fn container_mix_matches_popularity() {
        // A popular interest (large audience) should have dense blocks; the
        // panel-wide member count always reconciles with the containers.
        let idx = index();
        let mut saw_dense = false;
        let mut saw_sparse = false;
        for interest in world().catalog().interests() {
            let list = idx.posting(interest.id).expect("full build");
            let (dense, sparse) = list.container_mix();
            assert_eq!(dense + sparse, idx.panel_len().div_ceil(BLOCK_USERS));
            saw_dense |= dense > 0;
            saw_sparse |= sparse > 0;
            let via_count =
                idx.conjunction_count(&[interest.id], CountryFilter::ALL).expect("built");
            assert_eq!(via_count, list.members());
        }
        assert!(saw_dense, "some popular interest should pack dense blocks");
        assert!(saw_sparse, "some rare interest should pack sparse blocks");
    }

    #[test]
    fn generation_stamps_and_mutation_monotonicity() {
        let mut w = World::generate(WorldConfig::test_scale(31)).unwrap();
        let ids: Vec<InterestId> = (0..6).map(|i| InterestId(i * 101)).collect();
        let before = ReachIndex::build_for(&w, &ids);
        assert!(before.is_current(&w));
        let count_before = before.conjunction_count(&ids[..2], CountryFilter::ALL);
        w.scale_budget_factor(1.5);
        assert!(!before.is_current(&w), "mutation must stale the index");
        let after = ReachIndex::build_for(&w, &ids);
        assert!(after.is_current(&w));
        assert!(after.generation() > before.generation());
        // Common random numbers: raising every carriage probability grows
        // each membership set monotonically.
        let count_after = after.conjunction_count(&ids[..2], CountryFilter::ALL);
        assert!(count_after >= count_before, "{count_after:?} vs {count_before:?}");
        for &id in &ids {
            let (b, a) = (before.posting(id), after.posting(id));
            let (b, a) = (b.expect("built"), a.expect("built"));
            assert!(a.members() >= b.members(), "interest {id:?} shrank under growth");
        }
        assert_eq!(
            after.conjunction_count(&ids, CountryFilter::ALL),
            Some(boolean_reference_count(&w, &ids, CountryFilter::ALL)),
            "rebuilt index still matches the reference scan"
        );
    }

    #[test]
    fn heap_accounting_is_positive_and_bounded() {
        let idx = index();
        let bytes = idx.heap_bytes();
        assert!(bytes > 0);
        // Posting lists can never exceed one dense bitmap per interest plus
        // the country bitmaps.
        let word_len = idx.panel_len().div_ceil(64);
        let dense_cap = (idx.built_interests() + 50) * (word_len + BLOCK_WORDS) * 8;
        assert!(bytes <= dense_cap, "{bytes} > {dense_cap}");
    }

    #[test]
    fn index_config_env_contract() {
        assert!(!IndexConfig::default().enabled);
        assert!(IndexConfig::enabled().enabled);
        assert!(!IndexConfig::disabled().enabled);
    }

    #[test]
    fn pair_uniform_is_in_unit_interval_and_spread() {
        let mut sum = 0.0;
        for v in 0..1_000u32 {
            let u = pair_uniform(42, v, 7);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 1_000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from uniform");
    }
}
