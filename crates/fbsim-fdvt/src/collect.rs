//! Ad-preference collection and the revenue estimate.
//!
//! Section 2.2: the FDVT extension parses the user's ad-preferences page on
//! each FB session, collecting the interests FB has assigned, and shows the
//! user a real-time estimate of the ad revenue they generate for FB — the
//! extension's original headline feature, included here so the simulated
//! extension exercises the full flow the paper describes.

use fbsim_population::{InterestCatalog, InterestId, MaterializedUser};
use serde::{Deserialize, Serialize};

/// One collected ad-preference entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdPreference {
    /// The interest.
    pub interest: InterestId,
    /// Display name as shown on the ad-preferences page.
    pub name: String,
    /// Worldwide audience size at collection time.
    pub audience_size: f64,
}

/// Parses a user's ad-preference page into collected entries, resolving
/// names and audience sizes through the catalog (the extension queries the
/// Ads Manager API for each interest's audience).
pub fn collect_ad_preferences(
    user: &MaterializedUser,
    catalog: &InterestCatalog,
) -> Vec<AdPreference> {
    user.interests
        .iter()
        .map(|&id| {
            let interest = catalog.interest(id);
            AdPreference {
                interest: id,
                name: interest.name.clone(),
                audience_size: interest.target_audience,
            }
        })
        .collect()
}

/// Per-session revenue estimate, in euros.
///
/// The FDVT methodology prices the impressions and clicks a user receives
/// during a browsing session at market CPM/CPC rates. The simulator uses a
/// single blended rate pair; the estimate's purpose here is flow
/// completeness, not pricing research.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RevenueEstimate {
    /// Impressions priced.
    pub impressions: u64,
    /// Clicks priced.
    pub clicks: u64,
    /// Estimated revenue in euros.
    pub revenue_eur: f64,
}

/// Blended display CPM used by the estimate (€ per 1,000 impressions).
pub const ESTIMATE_CPM_EUR: f64 = 2.4;
/// Blended CPC used by the estimate (€ per click).
pub const ESTIMATE_CPC_EUR: f64 = 0.4;

/// Estimates the revenue a session's ad activity generated for FB.
pub fn estimate_session_revenue(impressions: u64, clicks: u64) -> RevenueEstimate {
    let revenue =
        impressions as f64 * ESTIMATE_CPM_EUR / 1_000.0 + clicks as f64 * ESTIMATE_CPC_EUR;
    RevenueEstimate { impressions, clicks, revenue_eur: (revenue * 100.0).round() / 100.0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbsim_population::{World, WorldConfig};

    #[test]
    fn collect_resolves_names_and_audiences() {
        let world = World::generate(WorldConfig::test_scale(41)).unwrap();
        let user = world.materializer().sample_cohort(1, 5).pop().unwrap();
        let prefs = collect_ad_preferences(&user, world.catalog());
        assert_eq!(prefs.len(), user.interests.len());
        for p in &prefs {
            assert!(!p.name.is_empty());
            assert!(p.audience_size >= 20.0);
            assert_eq!(p.interest, world.catalog().interest(p.interest).id);
        }
    }

    #[test]
    fn revenue_estimate_math() {
        let r = estimate_session_revenue(10, 1);
        // 10 × 2.4/1000 + 1 × 0.4 = 0.424 → 0.42 after rounding.
        assert_eq!(r.revenue_eur, 0.42);
        assert_eq!(r.impressions, 10);
        assert_eq!(r.clicks, 1);
    }

    #[test]
    fn zero_activity_is_free() {
        assert_eq!(estimate_session_revenue(0, 0).revenue_eur, 0.0);
    }

    #[test]
    fn revenue_monotone_in_activity() {
        let a = estimate_session_revenue(100, 0).revenue_eur;
        let b = estimate_session_revenue(200, 0).revenue_eur;
        let c = estimate_session_revenue(200, 3).revenue_eur;
        assert!(a < b && b < c);
    }
}
