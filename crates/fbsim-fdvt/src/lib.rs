//! # fbsim-fdvt
//!
//! Simulator of the FDVT browser extension — the data-collection instrument
//! behind the paper's 2,390-user cohort (Section 2.2/3) and the §6 privacy
//! defence.
//!
//! * [`registration`] — the opt-in flow: compulsory country, optional
//!   gender/age/relationship status, GDPR consent record.
//! * [`collect`] — harvesting a user's ad-preference list from the
//!   population model and the extension's original headline feature, the
//!   per-session ad-revenue estimate.
//! * [`dataset`] — assembly of the research cohort with the paper's §3
//!   marginals: 1,949 men / 347 women / 94 undisclosed; 117 adolescents /
//!   1,374 early adults / 578 adults / 19 matures / 302 undisclosed; the
//!   80-country split of Table 4; interests-per-user from Fig. 1.
//! * [`risk`] — the §6 defence: audience-size risk bands (High ≤ 10k <
//!   Medium ≤ 100k < Low ≤ 1M < None), the sorted risk report with
//!   one-click removal, and the Fig.-7 interface model.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collect;
pub mod dataset;
pub mod registration;
pub mod risk;

pub use dataset::{AgeBand, FdvtDataset, FdvtUser, GenderDecl};
pub use registration::{ConsentRecord, Registration, RegistrationError};
pub use risk::{RiskLevel, RiskReport};
