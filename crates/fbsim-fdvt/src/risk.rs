//! The §6 defence: interest risk bands and one-click removal.
//!
//! The extension sorts the user's interests by audience size and colour-codes
//! them: **High** risk for worldwide audiences ≤ 10k, **Medium** ≤ 100k,
//! **Low** ≤ 1M, **None** above 1M. The user can delete any interest (or all
//! highly risky ones) with a click; deleted interests stop being usable to
//! target them. Fig. 7 shows the interface this module models.

use fbsim_adplatform::analyze::{NanotargetingRisk, NpThresholds};
use fbsim_population::{InterestCatalog, InterestId, MaterializedUser};
use serde::{Deserialize, Serialize};

/// Risk bands of the §6 colour code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RiskLevel {
    /// Audience ≤ 10k (red).
    High,
    /// Audience in (10k, 100k] (orange).
    Medium,
    /// Audience in (100k, 1M] (yellow).
    Low,
    /// Audience > 1M (green).
    None,
}

impl RiskLevel {
    /// Classifies an audience size using the paper's default thresholds.
    pub fn classify(audience: f64) -> Self {
        Self::classify_with(audience, &RiskThresholds::default())
    }

    /// Classifies with custom thresholds ("the threshold for each risk
    /// category can be easily modified", §6).
    pub fn classify_with(audience: f64, thresholds: &RiskThresholds) -> Self {
        if audience <= thresholds.high_max {
            RiskLevel::High
        } else if audience <= thresholds.medium_max {
            RiskLevel::Medium
        } else if audience <= thresholds.low_max {
            RiskLevel::Low
        } else {
            RiskLevel::None
        }
    }

    /// Display label matching the Fig.-7 interface.
    pub fn label(self) -> &'static str {
        match self {
            RiskLevel::High => "High Risk",
            RiskLevel::Medium => "Medium Risk",
            RiskLevel::Low => "Low Risk",
            RiskLevel::None => "No Risk",
        }
    }
}

/// Configurable band thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RiskThresholds {
    /// Upper bound of the High band.
    pub high_max: f64,
    /// Upper bound of the Medium band.
    pub medium_max: f64,
    /// Upper bound of the Low band.
    pub low_max: f64,
}

impl Default for RiskThresholds {
    fn default() -> Self {
        Self { high_max: 10_000.0, medium_max: 100_000.0, low_max: 1_000_000.0 }
    }
}

/// Status of an interest row in the interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterestStatus {
    /// Currently in the user's ad-preference set.
    Active,
    /// Removed by the user through the interface.
    Removed,
}

/// One row of the risk report (one interest).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RiskRow {
    /// The interest.
    pub interest: InterestId,
    /// Display name.
    pub name: String,
    /// Risk band.
    pub risk: RiskLevel,
    /// Worldwide audience size.
    pub audience_size: f64,
    /// Row status.
    pub status: InterestStatus,
}

/// The "Identification of Risks from my Facebook Interests" report —
/// the Fig.-7 interface state for one user.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RiskReport {
    rows: Vec<RiskRow>,
}

impl RiskReport {
    /// Builds the report for a user: interests sorted ascending by audience
    /// size (riskiest first), all initially active.
    pub fn build(user: &MaterializedUser, catalog: &InterestCatalog) -> Self {
        Self::build_with(user, catalog, &RiskThresholds::default())
    }

    /// [`Self::build`] with custom thresholds.
    pub fn build_with(
        user: &MaterializedUser,
        catalog: &InterestCatalog,
        thresholds: &RiskThresholds,
    ) -> Self {
        let rows = user
            .interests_by_audience(catalog)
            .into_iter()
            .map(|id| {
                let interest = catalog.interest(id);
                RiskRow {
                    interest: id,
                    name: interest.name.clone(),
                    risk: RiskLevel::classify_with(interest.target_audience, thresholds),
                    audience_size: interest.target_audience,
                    status: InterestStatus::Active,
                }
            })
            .collect();
        Self { rows }
    }

    /// All rows, riskiest (smallest audience) first.
    pub fn rows(&self) -> &[RiskRow] {
        &self.rows
    }

    /// Active interests only.
    pub fn active_interests(&self) -> Vec<InterestId> {
        self.rows
            .iter()
            .filter(|r| r.status == InterestStatus::Active)
            .map(|r| r.interest)
            .collect()
    }

    /// Count of active rows at a given risk level.
    pub fn count_at(&self, risk: RiskLevel) -> usize {
        self.rows.iter().filter(|r| r.status == InterestStatus::Active && r.risk == risk).count()
    }

    /// "Delete Interest": removes one interest. Returns whether the row
    /// existed and was active.
    pub fn remove(&mut self, interest: InterestId) -> bool {
        for row in &mut self.rows {
            if row.interest == interest && row.status == InterestStatus::Active {
                row.status = InterestStatus::Removed;
                return true;
            }
        }
        false
    }

    /// "DELETE ALL HIGHLY RISKY INTERESTS": removes every active High-risk
    /// interest; returns how many were removed.
    pub fn remove_all_high_risk(&mut self) -> usize {
        let mut removed = 0;
        for row in &mut self.rows {
            if row.status == InterestStatus::Active && row.risk == RiskLevel::High {
                row.status = InterestStatus::Removed;
                removed += 1;
            }
        }
        removed
    }

    /// "DELETE ALL INTERESTS".
    pub fn remove_all(&mut self) -> usize {
        let mut removed = 0;
        for row in &mut self.rows {
            if row.status == InterestStatus::Active {
                row.status = InterestStatus::Removed;
                removed += 1;
            }
        }
        removed
    }

    /// The §8 nanotargeting exposure of the *current* (post-removal)
    /// interest set: the verdict the static analyzer would return for an
    /// attacker who combines every remaining active interest, with the
    /// audience upper bound taken from the rarest active interest (the
    /// conjunction can reach at most that marginal).
    pub fn nanotargeting_exposure(&self) -> NanotargetingRisk {
        self.nanotargeting_exposure_with(&NpThresholds::paper())
    }

    /// [`Self::nanotargeting_exposure`] with custom thresholds.
    pub fn nanotargeting_exposure_with(&self, thresholds: &NpThresholds) -> NanotargetingRisk {
        let active: Vec<&RiskRow> =
            self.rows.iter().filter(|r| r.status == InterestStatus::Active).collect();
        // Rows are sorted ascending by audience, so the first active row is
        // the rarest; an empty set has nothing an attacker can combine.
        let upper = active.first().map_or(f64::INFINITY, |r| r.audience_size);
        NanotargetingRisk::assess(active.len(), upper, thresholds)
    }

    /// One-line advisory for the Fig.-7 interface summarising
    /// [`Self::nanotargeting_exposure`].
    pub fn exposure_advisory(&self) -> String {
        let exposure = self.nanotargeting_exposure();
        let active = self.active_interests().len();
        format!("Nanotargeting exposure: {} ({} active interests)", exposure.label(), active)
    }

    /// Renders the interface as text (the Fig.-7 table).
    pub fn render(&self, limit: usize) -> String {
        let mut out = String::from("Interest name | Risk level | Audience size | Status\n");
        for row in self.rows.iter().take(limit) {
            out.push_str(&format!(
                "{} | {} | {:.0} | {}\n",
                row.name,
                row.risk.label(),
                row.audience_size,
                match row.status {
                    InterestStatus::Active => "ACTIVE",
                    InterestStatus::Removed => "REMOVED",
                }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbsim_population::{World, WorldConfig};
    use std::sync::OnceLock;

    fn world() -> &'static World {
        static WORLD: OnceLock<World> = OnceLock::new();
        WORLD.get_or_init(|| World::generate(WorldConfig::test_scale(61)).unwrap())
    }

    fn report() -> RiskReport {
        let user = world().materializer().sample_cohort(1, 77).pop().unwrap();
        RiskReport::build(&user, world().catalog())
    }

    #[test]
    fn classification_thresholds() {
        assert_eq!(RiskLevel::classify(4_190.0), RiskLevel::High);
        assert_eq!(RiskLevel::classify(10_000.0), RiskLevel::High);
        assert_eq!(RiskLevel::classify(15_740.0), RiskLevel::Medium);
        assert_eq!(RiskLevel::classify(100_000.0), RiskLevel::Medium);
        assert_eq!(RiskLevel::classify(360_370.0), RiskLevel::Low);
        assert_eq!(RiskLevel::classify(1_000_000.0), RiskLevel::Low);
        assert_eq!(RiskLevel::classify(40_252_260.0), RiskLevel::None);
    }

    #[test]
    fn custom_thresholds() {
        let t = RiskThresholds { high_max: 100.0, medium_max: 200.0, low_max: 300.0 };
        assert_eq!(RiskLevel::classify_with(150.0, &t), RiskLevel::Medium);
        assert_eq!(RiskLevel::classify_with(10_000.0, &t), RiskLevel::None);
    }

    #[test]
    fn rows_sorted_riskiest_first() {
        let r = report();
        for w in r.rows().windows(2) {
            assert!(w[0].audience_size <= w[1].audience_size);
        }
    }

    #[test]
    fn remove_single_interest() {
        let mut r = report();
        let first = r.rows()[0].interest;
        assert!(r.remove(first));
        assert!(!r.remove(first), "second removal is a no-op");
        assert!(!r.active_interests().contains(&first));
    }

    #[test]
    fn remove_unknown_interest_is_noop() {
        let mut r = report();
        assert!(!r.remove(InterestId(u32::MAX)));
    }

    #[test]
    fn remove_all_high_risk_clears_band() {
        let mut r = report();
        let high_before = r.count_at(RiskLevel::High);
        let removed = r.remove_all_high_risk();
        assert_eq!(removed, high_before);
        assert_eq!(r.count_at(RiskLevel::High), 0);
        // Other bands untouched.
        assert_eq!(r.active_interests().len(), r.rows().len() - removed);
    }

    #[test]
    fn remove_all_empties_report() {
        let mut r = report();
        let n = r.rows().len();
        assert_eq!(r.remove_all(), n);
        assert!(r.active_interests().is_empty());
        assert_eq!(r.remove_all(), 0);
    }

    #[test]
    fn exposure_shrinks_as_interests_are_removed() {
        let mut r = report();
        let before = r.nanotargeting_exposure();
        // A freshly materialised user carries tens of interests, several of
        // them rare: full exposure is the worst verdict.
        assert!(before.is_actionable(), "{before:?}");
        r.remove_all();
        let after = r.nanotargeting_exposure();
        assert!(matches!(after, NanotargetingRisk::Low { interests: 0 }), "{after:?}");
        assert!(!after.is_actionable());
    }

    #[test]
    fn exposure_advisory_mentions_the_level() {
        let r = report();
        let line = r.exposure_advisory();
        assert!(line.contains("Nanotargeting exposure:"), "{line}");
        assert!(line.contains(r.nanotargeting_exposure().label()), "{line}");
    }

    #[test]
    fn render_contains_labels() {
        let r = report();
        let text = r.render(5);
        assert!(text.contains("Risk level"));
        assert!(text.contains("ACTIVE"));
        assert!(text.lines().count() <= 6);
    }
}
