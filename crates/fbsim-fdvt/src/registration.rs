//! The FDVT registration / opt-in flow.
//!
//! Section 2.2–2.3: at installation the user must provide their country of
//! residence (compulsory — without it the extension cannot query the FB Ads
//! Manager API, whose audiences require a location), may provide gender,
//! age and relationship status, and must opt in to both the terms of use /
//! privacy policy and the anonymous research use of their data (GDPR).

use fbsim_population::countries::CountryCode;
use serde::{Deserialize, Serialize};

/// Relationship status options offered at registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RelationshipStatus {
    /// Single.
    Single,
    /// In a relationship.
    InRelationship,
    /// Married.
    Married,
}

/// GDPR consent record captured at registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsentRecord {
    /// Opt-in to the terms of use and privacy policy.
    pub terms_accepted: bool,
    /// Explicit opt-in to anonymous research use of collected data.
    pub research_use_accepted: bool,
}

impl ConsentRecord {
    /// Whether registration may proceed (both opt-ins are required).
    pub fn is_complete(&self) -> bool {
        self.terms_accepted && self.research_use_accepted
    }
}

/// Errors rejecting a registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistrationError {
    /// Country missing — compulsory (the Ads Manager API requires a
    /// location to form any audience).
    MissingCountry,
    /// The user did not accept the terms / privacy policy.
    TermsNotAccepted,
    /// The user did not opt in to research use.
    ResearchConsentMissing,
    /// Declared age outside FB's 13+ rule.
    InvalidAge(u8),
}

impl std::fmt::Display for RegistrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistrationError::MissingCountry => {
                write!(f, "country of residence is compulsory")
            }
            RegistrationError::TermsNotAccepted => {
                write!(f, "terms of use / privacy policy must be accepted")
            }
            RegistrationError::ResearchConsentMissing => {
                write!(f, "explicit research-use consent is required (GDPR opt-in)")
            }
            RegistrationError::InvalidAge(a) => write!(f, "age {a} is below the minimum of 13"),
        }
    }
}

impl std::error::Error for RegistrationError {}

/// A completed FDVT registration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Registration {
    /// Country of residence (compulsory).
    pub country: CountryCode,
    /// Declared gender, if provided.
    pub gender: Option<crate::dataset::GenderDecl>,
    /// Declared age, if provided.
    pub age: Option<u8>,
    /// Declared relationship status, if provided.
    pub relationship: Option<RelationshipStatus>,
    /// Consent record.
    pub consent: ConsentRecord,
}

impl Registration {
    /// Validates and completes a registration.
    ///
    /// # Errors
    ///
    /// See [`RegistrationError`].
    pub fn register(
        country: Option<CountryCode>,
        gender: Option<crate::dataset::GenderDecl>,
        age: Option<u8>,
        relationship: Option<RelationshipStatus>,
        consent: ConsentRecord,
    ) -> Result<Self, RegistrationError> {
        let country = country.ok_or(RegistrationError::MissingCountry)?;
        if !consent.terms_accepted {
            return Err(RegistrationError::TermsNotAccepted);
        }
        if !consent.research_use_accepted {
            return Err(RegistrationError::ResearchConsentMissing);
        }
        if let Some(a) = age {
            if a < 13 {
                return Err(RegistrationError::InvalidAge(a));
            }
        }
        Ok(Self { country, gender, age, relationship, consent })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GenderDecl;

    fn full_consent() -> ConsentRecord {
        ConsentRecord { terms_accepted: true, research_use_accepted: true }
    }

    #[test]
    fn minimal_valid_registration() {
        let reg =
            Registration::register(Some(CountryCode::new("ES")), None, None, None, full_consent())
                .unwrap();
        assert_eq!(reg.country.as_str(), "ES");
        assert!(reg.gender.is_none());
    }

    #[test]
    fn country_is_compulsory() {
        let err = Registration::register(None, None, None, None, full_consent()).unwrap_err();
        assert_eq!(err, RegistrationError::MissingCountry);
    }

    #[test]
    fn both_consents_required() {
        let c = ConsentRecord { terms_accepted: false, research_use_accepted: true };
        assert_eq!(
            Registration::register(Some(CountryCode::new("FR")), None, None, None, c).unwrap_err(),
            RegistrationError::TermsNotAccepted
        );
        let c = ConsentRecord { terms_accepted: true, research_use_accepted: false };
        assert_eq!(
            Registration::register(Some(CountryCode::new("FR")), None, None, None, c).unwrap_err(),
            RegistrationError::ResearchConsentMissing
        );
        assert!(!c.is_complete());
        assert!(full_consent().is_complete());
    }

    #[test]
    fn under_13_rejected() {
        let err = Registration::register(
            Some(CountryCode::new("FR")),
            Some(GenderDecl::Woman),
            Some(12),
            None,
            full_consent(),
        )
        .unwrap_err();
        assert_eq!(err, RegistrationError::InvalidAge(12));
    }

    #[test]
    fn optional_fields_carried() {
        let reg = Registration::register(
            Some(CountryCode::new("MX")),
            Some(GenderDecl::Man),
            Some(34),
            Some(RelationshipStatus::Married),
            full_consent(),
        )
        .unwrap();
        assert_eq!(reg.age, Some(34));
        assert_eq!(reg.relationship, Some(RelationshipStatus::Married));
    }
}
