//! The FDVT research cohort — the paper's 2,390-user dataset (Section 3,
//! Table 4).
//!
//! Cohort users carry the declared demographics of the real dataset
//! (generated to match the published marginals exactly) and a materialised
//! interest list drawn from the population model with the Fig.-1
//! interest-count distribution.
//!
//! ### Injected demographic heterogeneity
//!
//! The paper's Appendix C reports mild demographic differences in `N(R)_0.9`
//! (women above men, adolescents above adults, Argentina above France).
//! Nothing in a synthetic world produces those specific differences by
//! itself, so the generator optionally injects them through the taste
//! *diversity* channel: groups the paper found harder to nanotarget get
//! slightly narrower taste topic ranges (more concentrated interests →
//! larger conjunction audiences → larger `N(R)`). This is a documented
//! substitution for unobservable real-world heterogeneity, switchable via
//! [`CohortConfig::demographic_effects`].

use fbsim_population::countries::CountryCode;
use fbsim_population::{MaterializedUser, World};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Declared gender in the registration form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GenderDecl {
    /// Declared man (1,949 users in the paper's cohort).
    Man,
    /// Declared woman (347 users).
    Woman,
    /// Gender not disclosed (94 users).
    Undisclosed,
}

/// Erikson age bands used by the paper's Appendix C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AgeBand {
    /// 13–19 (117 users).
    Adolescence,
    /// 20–39 (1,374 users).
    EarlyAdulthood,
    /// 40–64 (578 users).
    Adulthood,
    /// 65+ (19 users).
    Maturity,
    /// Age not disclosed (302 users).
    Undisclosed,
}

impl AgeBand {
    /// Classifies a declared age.
    pub fn of_age(age: u8) -> Self {
        match age {
            0..=19 => AgeBand::Adolescence,
            20..=39 => AgeBand::EarlyAdulthood,
            40..=64 => AgeBand::Adulthood,
            _ => AgeBand::Maturity,
        }
    }
}

/// One cohort user: declared demographics plus the materialised interest
/// list the extension harvested.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FdvtUser {
    /// Stable index in the cohort.
    pub id: u32,
    /// Declared country (Table 4; compulsory at registration).
    pub country: CountryCode,
    /// Declared gender.
    pub gender: GenderDecl,
    /// Declared age band.
    pub age_band: AgeBand,
    /// The user's materialised profile (taste + interest list).
    pub profile: MaterializedUser,
}

/// The paper's Table 4: users per country in the 2,390-user cohort.
pub const COHORT_COUNTRIES: [(&str, u32); 80] = [
    ("ES", 1131),
    ("FR", 335),
    ("MX", 122),
    ("AR", 115),
    ("EC", 89),
    ("PE", 78),
    ("CA", 61),
    ("CO", 48),
    ("US", 40),
    ("BE", 36),
    ("UY", 35),
    ("GB", 26),
    ("CH", 24),
    ("PT", 21),
    ("VE", 18),
    ("SV", 17),
    ("CL", 14),
    ("PY", 13),
    ("DE", 11),
    ("IT", 11),
    ("BO", 9),
    ("MA", 8),
    ("BR", 6),
    ("GT", 6),
    ("HN", 6),
    ("NI", 6),
    ("NL", 6),
    ("PA", 6),
    ("TN", 6),
    ("BD", 5),
    ("SE", 4),
    ("TH", 4),
    ("AD", 3),
    ("AT", 3),
    ("DK", 3),
    ("DZ", 3),
    ("FI", 3),
    ("PK", 3),
    ("SN", 3),
    ("AF", 2),
    ("AU", 2),
    ("CY", 2),
    ("DO", 2),
    ("GR", 2),
    ("HK", 2),
    ("ID", 2),
    ("IE", 2),
    ("LU", 2),
    ("PL", 2),
    ("RE", 2),
    ("AL", 1),
    ("AM", 1),
    ("AO", 1),
    ("AX", 1),
    ("BG", 1),
    ("BT", 1),
    ("CI", 1),
    ("CR", 1),
    ("CZ", 1),
    ("DJ", 1),
    ("GI", 1),
    ("GN", 1),
    ("IN", 1),
    ("IQ", 1),
    ("LK", 1),
    ("LT", 1),
    ("MG", 1),
    ("MO", 1),
    ("MU", 1),
    ("NC", 1),
    ("NP", 1),
    ("NZ", 1),
    ("PH", 1),
    ("PM", 1),
    ("PR", 1),
    ("RO", 1),
    ("RS", 1),
    ("RU", 1),
    ("RW", 1),
    ("TW", 1),
];

/// The paper's gender marginals: (men, women, undisclosed).
pub const GENDER_MARGINALS: (u32, u32, u32) = (1_949, 347, 94);

/// The paper's age-band marginals: (adolescence, early adulthood, adulthood,
/// maturity, undisclosed).
pub const AGE_MARGINALS: (u32, u32, u32, u32, u32) = (117, 1_374, 578, 19, 302);

/// Cohort-generation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CohortConfig {
    /// Number of users (the paper: 2,390).
    pub size: u32,
    /// Seed for demographics and profile materialisation.
    pub seed: u64,
    /// Whether to inject the Appendix-C demographic heterogeneity (see
    /// module docs).
    pub demographic_effects: bool,
}

impl Default for CohortConfig {
    fn default() -> Self {
        Self { size: 2_390, seed: 0xFD07, demographic_effects: true }
    }
}

/// The assembled research cohort.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FdvtDataset {
    /// Cohort users.
    pub users: Vec<FdvtUser>,
}

/// Taste topic-count shift for the injected demographic effects: groups the
/// paper found harder to nanotarget get narrower (more concentrated) tastes.
fn diversity_shift(gender: GenderDecl, age: AgeBand, country: CountryCode) -> i32 {
    let mut shift = 0i32;
    if gender == GenderDecl::Woman {
        shift -= 1;
    }
    if age == AgeBand::Adolescence {
        shift -= 1;
    }
    match country.as_str() {
        "AR" => shift -= 1,
        "FR" => shift += 1,
        _ => {}
    }
    shift
}

impl FdvtDataset {
    /// Generates a cohort from a world.
    ///
    /// Demographic marginals follow the paper exactly when `config.size`
    /// equals 2,390; for other sizes each marginal is scaled proportionally
    /// (largest-remainder rounding on the country table).
    pub fn generate(world: &World, config: CohortConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xFD_D47A);
        let size = config.size as usize;
        let genders = scaled_assignments(
            &[
                (GenderDecl::Man, GENDER_MARGINALS.0),
                (GenderDecl::Woman, GENDER_MARGINALS.1),
                (GenderDecl::Undisclosed, GENDER_MARGINALS.2),
            ],
            size,
            &mut rng,
        );
        let ages = scaled_assignments(
            &[
                (AgeBand::Adolescence, AGE_MARGINALS.0),
                (AgeBand::EarlyAdulthood, AGE_MARGINALS.1),
                (AgeBand::Adulthood, AGE_MARGINALS.2),
                (AgeBand::Maturity, AGE_MARGINALS.3),
                (AgeBand::Undisclosed, AGE_MARGINALS.4),
            ],
            size,
            &mut rng,
        );
        let country_table: Vec<(CountryCode, u32)> =
            COHORT_COUNTRIES.iter().map(|&(code, n)| (CountryCode::new(code), n)).collect();
        let countries = scaled_assignments(&country_table, size, &mut rng);

        let materializer = world.materializer();
        let cfg = world.config();
        let users = (0..size)
            .map(|i| {
                let gender = genders[i];
                let age_band = ages[i];
                let country = countries[i];
                let topics_range = if config.demographic_effects {
                    let shift = diversity_shift(gender, age_band, country);
                    let min = (cfg.topics_per_user_min as i32 + shift).max(1) as u32;
                    let max = (cfg.topics_per_user_max as i32 + shift).max(min as i32) as u32;
                    Some((min, max))
                } else {
                    None
                };
                let profile = materializer.sample_user_customized(&mut rng, None, topics_range);
                FdvtUser { id: i as u32, country, gender, age_band, profile }
            })
            .collect();
        Self { users }
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the cohort is empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Users declaring a given gender.
    pub fn by_gender(&self, gender: GenderDecl) -> Vec<&FdvtUser> {
        self.users.iter().filter(|u| u.gender == gender).collect()
    }

    /// Users in a given age band.
    pub fn by_age_band(&self, band: AgeBand) -> Vec<&FdvtUser> {
        self.users.iter().filter(|u| u.age_band == band).collect()
    }

    /// Users declaring a given country.
    pub fn by_country(&self, country: CountryCode) -> Vec<&FdvtUser> {
        self.users.iter().filter(|u| u.country == country).collect()
    }

    /// Interests-per-user sample (Fig. 1 input).
    pub fn interests_per_user(&self) -> Vec<f64> {
        self.users.iter().map(|u| u.profile.interests.len() as f64).collect()
    }

    /// All distinct interests appearing in the cohort (the paper's "99k
    /// unique interests" at full scale).
    pub fn unique_interests(&self) -> Vec<fbsim_population::InterestId> {
        let mut ids: Vec<_> =
            self.users.iter().flat_map(|u| u.profile.interests.iter().copied()).collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Total interest occurrences (the paper: 1.5M).
    pub fn total_occurrences(&self) -> usize {
        self.users.iter().map(|u| u.profile.interests.len()).sum()
    }
}

/// Expands `(value, weight)` marginals into exactly `size` assignments
/// (largest-remainder rounding), shuffled so joint demographics are
/// independent — the paper reports marginals only.
fn scaled_assignments<T: Copy>(marginals: &[(T, u32)], size: usize, rng: &mut StdRng) -> Vec<T> {
    let total: u64 = marginals.iter().map(|&(_, n)| n as u64).sum();
    assert!(total > 0, "marginals must be non-empty");
    let mut counts: Vec<(usize, u64, f64)> = marginals
        .iter()
        .enumerate()
        .map(|(i, &(_, n))| {
            let exact = n as f64 * size as f64 / total as f64;
            (i, exact.floor() as u64, exact - exact.floor())
        })
        .collect();
    let assigned: u64 = counts.iter().map(|&(_, c, _)| c).sum();
    let mut remainder = size as u64 - assigned;
    // Largest remainders get the leftover slots.
    counts.sort_by(|a, b| b.2.total_cmp(&a.2));
    for slot in counts.iter_mut() {
        if remainder == 0 {
            break;
        }
        slot.1 += 1;
        remainder -= 1;
    }
    let mut out: Vec<T> = Vec::with_capacity(size);
    for &(i, count, _) in &counts {
        out.extend(std::iter::repeat_n(marginals[i].0, count as usize));
    }
    debug_assert_eq!(out.len(), size);
    out.shuffle(rng);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbsim_population::WorldConfig;
    use std::sync::OnceLock;

    fn world() -> &'static World {
        static WORLD: OnceLock<World> = OnceLock::new();
        WORLD.get_or_init(|| World::generate(WorldConfig::test_scale(33)).unwrap())
    }

    fn small_cohort() -> FdvtDataset {
        FdvtDataset::generate(
            world(),
            CohortConfig { size: 239, seed: 1, demographic_effects: true },
        )
    }

    #[test]
    fn table4_sums_to_2390() {
        let total: u32 = COHORT_COUNTRIES.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 2_390);
        assert_eq!(COHORT_COUNTRIES.len(), 80);
    }

    #[test]
    fn gender_and_age_marginals_sum() {
        assert_eq!(GENDER_MARGINALS.0 + GENDER_MARGINALS.1 + GENDER_MARGINALS.2, 2_390);
        let (a, b, c, d, e) = AGE_MARGINALS;
        assert_eq!(a + b + c + d + e, 2_390);
    }

    #[test]
    fn full_size_cohort_matches_paper_marginals() {
        let cohort = FdvtDataset::generate(
            world(),
            CohortConfig { size: 2_390, seed: 9, demographic_effects: false },
        );
        assert_eq!(cohort.len(), 2_390);
        assert_eq!(cohort.by_gender(GenderDecl::Man).len(), 1_949);
        assert_eq!(cohort.by_gender(GenderDecl::Woman).len(), 347);
        assert_eq!(cohort.by_gender(GenderDecl::Undisclosed).len(), 94);
        assert_eq!(cohort.by_age_band(AgeBand::Adolescence).len(), 117);
        assert_eq!(cohort.by_age_band(AgeBand::Maturity).len(), 19);
        assert_eq!(cohort.by_country(CountryCode::new("ES")).len(), 1_131);
        assert_eq!(cohort.by_country(CountryCode::new("FR")).len(), 335);
        assert_eq!(cohort.by_country(CountryCode::new("RW")).len(), 1);
    }

    #[test]
    fn scaled_cohort_proportional() {
        let cohort = small_cohort();
        assert_eq!(cohort.len(), 239);
        // 10% scale: Spain ≈ 113, men ≈ 195.
        let spain = cohort.by_country(CountryCode::new("ES")).len();
        assert!((100..=126).contains(&spain), "Spain {spain}");
        let men = cohort.by_gender(GenderDecl::Man).len();
        assert!((185..=205).contains(&men), "men {men}");
    }

    #[test]
    fn deterministic_for_seed() {
        let a = small_cohort();
        let b = small_cohort();
        for (x, y) in a.users.iter().zip(&b.users) {
            assert_eq!(x.country, y.country);
            assert_eq!(x.profile.interests, y.profile.interests);
        }
    }

    #[test]
    fn interest_counts_follow_cohort_distribution() {
        let cohort = small_cohort();
        let counts = cohort.interests_per_user();
        let mut sorted = counts.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        // Test-scale cohort median is 120.
        assert!((50.0..=260.0).contains(&median), "median {median}");
        assert!(cohort.total_occurrences() > 10_000);
        assert!(!cohort.unique_interests().is_empty());
    }

    #[test]
    fn age_band_classification() {
        assert_eq!(AgeBand::of_age(13), AgeBand::Adolescence);
        assert_eq!(AgeBand::of_age(19), AgeBand::Adolescence);
        assert_eq!(AgeBand::of_age(20), AgeBand::EarlyAdulthood);
        assert_eq!(AgeBand::of_age(39), AgeBand::EarlyAdulthood);
        assert_eq!(AgeBand::of_age(40), AgeBand::Adulthood);
        assert_eq!(AgeBand::of_age(64), AgeBand::Adulthood);
        assert_eq!(AgeBand::of_age(65), AgeBand::Maturity);
    }

    #[test]
    fn demographic_effects_narrow_taste_for_women() {
        let cohort = FdvtDataset::generate(
            world(),
            CohortConfig { size: 1_000, seed: 3, demographic_effects: true },
        );
        let avg = |users: &[&FdvtUser]| {
            users.iter().map(|u| u.profile.taste.len() as f64).sum::<f64>() / users.len() as f64
        };
        let women = avg(&cohort.by_gender(GenderDecl::Woman));
        let men = avg(&cohort.by_gender(GenderDecl::Man));
        assert!(women < men, "women taste breadth {women} should be below men {men}");
    }

    #[test]
    fn effects_disabled_gives_uniform_taste() {
        let cohort = FdvtDataset::generate(
            world(),
            CohortConfig { size: 1_000, seed: 3, demographic_effects: false },
        );
        let avg = |users: &[&FdvtUser]| {
            users.iter().map(|u| u.profile.taste.len() as f64).sum::<f64>() / users.len() as f64
        };
        let women = avg(&cohort.by_gender(GenderDecl::Woman));
        let men = avg(&cohort.by_gender(GenderDecl::Man));
        assert!((women - men).abs() < 0.4, "no-effect cohort: {women} vs {men}");
    }
}
