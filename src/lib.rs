//! # unique-on-facebook
//!
//! Facade crate for the Rust reproduction of *Unique on Facebook:
//! Formulation and Evidence of (Nano)targeting Individual Users with non-PII
//! Data* (IMC 2021).
//!
//! Re-exports the workspace crates under short module names. See the README
//! for the architecture overview and `examples/` for end-to-end usage.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use fbsim_adplatform as adplatform;
pub use fbsim_fdvt as fdvt;
pub use fbsim_marketplace as marketplace;
pub use fbsim_population as population;
pub use fbsim_stats as stats;
pub use nanotarget;
pub use reach_api;
pub use reach_cache;
pub use uniqueness;
