//! §8.3: replay the nanotargeting experiment under the paper's proposed
//! platform policies and show both proposals block every successful attack.
//!
//! Run with `cargo run --release --example countermeasures`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use unique_on_facebook::nanotarget::countermeasures::{
    evaluate_all, evaluate_custom_audience_bypass,
};
use unique_on_facebook::nanotarget::{run_experiment, ExperimentConfig};
use unique_on_facebook::population::{MaterializedUser, World, WorldConfig};

fn main() {
    let world = World::generate(WorldConfig::test_scale(13)).expect("valid config");
    let mut rng = StdRng::seed_from_u64(99);
    let targets: Vec<MaterializedUser> =
        (0..3).map(|_| world.materializer().sample_user_with_count(&mut rng, 120)).collect();
    let refs: Vec<&MaterializedUser> = targets.iter().collect();
    let result =
        run_experiment(&world, &refs, &ExperimentConfig::default()).expect("targets are rich");

    println!(
        "under the current policy, {}/21 campaigns nanotargeted their user\n",
        result.successes().len()
    );
    for eval in evaluate_all(&world, &result) {
        println!(
            "policy {:<26}: blocks {}/{} campaigns, {}/{} successes {}",
            eval.policy,
            eval.blocked,
            eval.total,
            eval.successes_blocked,
            eval.successes_total,
            if eval.blocks_all_successes() { "→ attack fully prevented" } else { "→ LEAKS" },
        );
    }

    let bypass = evaluate_custom_audience_bypass();
    println!("\ncustom-audience padding bypass (PII route):");
    println!(
        "  list of {} records, {} matched, {} actually reachable",
        bypass.list_size, bypass.matched, bypass.active_matched
    );
    println!(
        "  current rule: {}   active-minimum rule: {}",
        if bypass.passes_current_rule { "ADMITS it" } else { "blocks it" },
        if bypass.passes_active_minimum { "ADMITS it" } else { "blocks it" },
    );
}
