//! The paper's threat model end to end: an attacker who knows a random
//! subset of a victim's interests sizes the audience through the networked
//! Marketing API, launches a campaign, and checks whether it nanotargeted.
//!
//! Run with `cargo run --release --example attacker_playbook`.

use std::sync::Arc;

use unique_on_facebook::adplatform::campaign::{
    CampaignManager, CampaignSpec, Creativity, Schedule,
};
use unique_on_facebook::adplatform::delivery::DeliveryModel;
use unique_on_facebook::adplatform::policy::CurrentFbPolicy;
use unique_on_facebook::adplatform::reach::{AdsManagerApi, ReportingEra};
use unique_on_facebook::adplatform::targeting::TargetingSpec;
use unique_on_facebook::population::{World, WorldConfig};
use unique_on_facebook::reach_api::server::ServerConfig;
use unique_on_facebook::reach_api::{ReachClient, ReachServer};

fn main() {
    let world = Arc::new(World::generate(WorldConfig::test_scale(11)).expect("valid config"));

    // The victim: a user whose interests the attacker partially knows.
    let victim = world.materializer().sample_cohort(1, 99).pop().expect("one victim");
    let known: Vec<u32> = victim.interests.iter().take(18).map(|i| i.0).collect();
    println!("attacker knows {} of the victim's {} interests", known.len(), victim.interests.len());

    // Step 1 — size the audience over the network, the way the paper's
    // data collection did (floored Potential Reach, rate-limited).
    let server =
        ReachServer::start(Arc::clone(&world), ServerConfig::default()).expect("loopback server");
    let mut client = ReachClient::connect(server.addr()).expect("connect");
    for n in [1usize, 6, 12, known.len()] {
        let reach = client.potential_reach(&["US", "ES", "FR", "BR"], &known[..n]).unwrap();
        println!(
            "  potential reach with {n:>2} interests: {}{}",
            reach.reported,
            if reach.floored { " (floored — true audience smaller)" } else { "" }
        );
    }

    // Step 2 — launch the campaign on the (simulated) ad platform.
    let spec = CampaignSpec {
        name: "attacker".into(),
        targeting: TargetingSpec::builder()
            .worldwide()
            .interests(victim.interests.iter().take(18).copied())
            .build()
            .expect("within limits"),
        creativity: Creativity {
            title: "tailored message for one person".into(),
            landing_url: "https://attacker.example/landing".into(),
        },
        daily_budget_eur: 10.0,
        schedule: Schedule::paper_experiment(),
    };
    let api = AdsManagerApi::new(&world, ReportingEra::Post2018);
    let mut manager = CampaignManager::new(api, CurrentFbPolicy, DeliveryModel::default());
    let mut rng = rand::SeedableRng::seed_from_u64(5);
    let id = manager
        .launch::<rand::rngs::StdRng>(&mut rng, spec, true)
        .expect("current FB policy never rejects");
    let report = manager.dashboard(id).expect("delivered");

    // Step 3 — read the dashboard like Table 2.
    println!("\ncampaign dashboard:");
    println!("  reached      : {}", report.reached);
    println!("  impressions  : {}", report.impressions);
    println!("  victim saw ad: {}", report.target_seen);
    println!("  cost         : €{:.2}", report.cost_eur);
    if report.nanotargeting_success() {
        println!("\n→ NANOTARGETED: the ad was delivered exclusively to the victim.");
    } else {
        println!("\n→ not exclusive this time; the paper shows 18+ known interests make");
        println!("  success highly likely at full FB scale.");
    }
}
