//! The defence side (§6): audit a user's interests with the FDVT risk
//! report, delete the risky ones, and show how the attacker's audience
//! estimates change.
//!
//! Run with `cargo run --release --example privacy_audit`.

use unique_on_facebook::fdvt::risk::RiskLevel;
use unique_on_facebook::fdvt::RiskReport;
use unique_on_facebook::population::{World, WorldConfig};
use unique_on_facebook::uniqueness::selection::{select_sequence, SelectionStrategy};

fn main() {
    let world = World::generate(WorldConfig::test_scale(21)).expect("valid config");
    let user = world.materializer().sample_cohort(1, 55).pop().expect("one user");
    let engine = world.reach_engine();

    // The §6 interface: interests sorted riskiest-first with colour bands.
    let mut report = RiskReport::build(&user, world.catalog());
    println!("== Risks of my FB interests (top 10) ==");
    print!("{}", report.render(10));
    println!(
        "bands: High {}, Medium {}, Low {}, None {}",
        report.count_at(RiskLevel::High),
        report.count_at(RiskLevel::Medium),
        report.count_at(RiskLevel::Low),
        report.count_at(RiskLevel::None),
    );

    // Attacker's view BEFORE cleanup: audience of the user's 6 rarest
    // interests.
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    use rand::SeedableRng;
    let lp = select_sequence(&user, world.catalog(), SelectionStrategy::LeastPopular, &mut rng);
    let before = engine.conjunction_reach(&lp[..lp.len().min(6)]);
    println!("\naudience of the 6 rarest interests BEFORE cleanup: {before:.1}");

    // One click: delete all highly risky interests.
    let removed = report.remove_all_high_risk();
    println!("deleted {removed} high-risk interests with one click");

    // Attacker's view AFTER cleanup: only the remaining (more popular)
    // interests are actionable.
    let remaining = report.active_interests();
    let cleaned = unique_on_facebook::population::MaterializedUser {
        taste: user.taste.clone(),
        country: user.country,
        interests: remaining,
    };
    let lp_after =
        select_sequence(&cleaned, world.catalog(), SelectionStrategy::LeastPopular, &mut rng);
    let after = engine.conjunction_reach(&lp_after[..lp_after.len().min(6)]);
    println!("audience of the 6 rarest REMAINING interests: {after:.1}");
    println!(
        "\n→ the same attack now lands in an audience {}× larger — no longer a nanotarget.",
        (after / before.max(1e-9)).round()
    );
}
