//! Quickstart: build a world, collect a cohort, estimate how many interests
//! make a user unique.
//!
//! Run with `cargo run --release --example quickstart`.

use unique_on_facebook::adplatform::reach::{AdsManagerApi, ReportingEra};
use unique_on_facebook::fdvt::dataset::CohortConfig;
use unique_on_facebook::fdvt::FdvtDataset;
use unique_on_facebook::population::{MaterializedUser, World, WorldConfig};
use unique_on_facebook::uniqueness::np::NpTable;
use unique_on_facebook::uniqueness::{AudienceVectors, SelectionStrategy};

fn main() {
    // 1. A small synthetic world (10M users, 2k interests) — fast enough
    //    for a demo; swap in `WorldConfig::paper_scale` for the real thing.
    let world = World::generate(WorldConfig::test_scale(7)).expect("valid config");
    println!(
        "world: {} users, {} interests (calibration error {:.1}%)",
        world.population(),
        world.catalog().len(),
        world.calibration().median_rel_error * 100.0
    );

    // 2. Simulate the FDVT browser extension collecting a research cohort.
    let cohort = FdvtDataset::generate(
        &world,
        CohortConfig { size: 239, seed: 1, demographic_effects: false },
    );
    println!("cohort: {} users, {} interest occurrences", cohort.len(), cohort.total_occurrences());

    // 3. Query the (simulated) Ads Manager for audience sizes of nested
    //    interest combinations, under the 2017 reporting floor of 20.
    let api = AdsManagerApi::new(&world, ReportingEra::Early2017);
    let profiles: Vec<&MaterializedUser> = cohort.users.iter().map(|u| &u.profile).collect();
    let lp = AudienceVectors::collect(&api, &profiles, SelectionStrategy::LeastPopular, 42);
    let random = AudienceVectors::collect(&api, &profiles, SelectionStrategy::Random, 42);

    // 4. Fit the paper's model: N_P = interests needed for uniqueness with
    //    probability P, with bootstrap confidence intervals.
    let table = NpTable::build(&lp, &random, 500, 42).expect("fits converge");
    println!("\n{}", table.render());
    println!("Reading: at paper scale the rarest ~4 interests (LP, P=0.9) or ~22 random");
    println!("interests make a user unique among 1.5B people. This demo world is 150×");
    println!("smaller with a different interest ecosystem, so its N_P values differ —");
    println!("run the crates/bench binaries (UOF_SCALE=paper) for the paper-scale numbers.");
}
