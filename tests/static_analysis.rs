//! Property-based tests of the static campaign-spec analyzer.
//!
//! Two soundness properties back the analyzer's use as a pre-flight gate:
//!
//! 1. for every *valid* spec, the conservative audience interval computed
//!    from engine-exact marginals contains the reach engine's true expected
//!    audience — so a static rejection (`upper < minimum`) can never veto a
//!    campaign the dynamic policy path would have accepted;
//! 2. a spec the analyzer calls *contradictory* matches no materialised
//!    user under the direct targeting semantics — so rejecting it without
//!    invoking the reach engine loses nothing.

use std::sync::OnceLock;

use fbsim_adplatform::analyze::{raw_spec_matches, SpecAnalyzer};
use fbsim_adplatform::targeting::TargetingBuilder;
use fbsim_adplatform::{AdsManagerApi, Gender, ReportingEra, TargetingSpec};
use fbsim_population::cohort::MaterializedUser;
use fbsim_population::{InterestId, World, WorldConfig, TARGETING_UNIVERSE};
use proptest::prelude::*;

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::generate(WorldConfig::test_scale(7)).expect("world generates"))
}

fn cohort() -> &'static [MaterializedUser] {
    static COHORT: OnceLock<Vec<MaterializedUser>> = OnceLock::new();
    COHORT.get_or_init(|| world().sample_cohort(40, 2021))
}

/// Engine-exact analyzer, built once: marginal extraction walks the whole
/// panel per interest, far too slow to repeat per proptest case.
fn analyzer() -> &'static SpecAnalyzer {
    static ANALYZER: OnceLock<SpecAnalyzer> = OnceLock::new();
    ANALYZER.get_or_init(|| SpecAnalyzer::from_engine(&world().reach_engine()))
}

/// Stages locations, interests, gender, and an age window on a fresh
/// builder. Seeds are deduplicated because `build()` rejects duplicates.
fn stage(
    worldwide: bool,
    country_seeds: &[usize],
    interest_seeds: &[usize],
    gender: Option<Gender>,
    age: Option<(u8, u8)>,
) -> TargetingBuilder {
    let mut builder = TargetingSpec::builder();
    if worldwide {
        builder = builder.worldwide();
    } else {
        let mut countries: Vec<usize> =
            country_seeds.iter().map(|&c| c % TARGETING_UNIVERSE.len()).collect();
        countries.sort_unstable();
        countries.dedup();
        for c in countries {
            builder = builder.location(TARGETING_UNIVERSE[c].code);
        }
    }
    let catalog_len = world().catalog().len();
    let mut interests: Vec<u32> =
        interest_seeds.iter().map(|&i| (i % catalog_len) as u32).collect();
    interests.sort_unstable();
    interests.dedup();
    for id in interests {
        builder = builder.interest(InterestId(id));
    }
    if let Some(g) = gender {
        builder = builder.gender(g);
    }
    if let Some((lo, hi)) = age {
        builder = builder.age_range(lo, hi);
    }
    builder
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness of the audience interval: with engine-exact marginals the
    /// analyzer's `[lower, upper]` always contains the engine's true
    /// expected audience, for arbitrary valid specs.
    #[test]
    fn interval_contains_true_reach(
        worldwide in any::<bool>(),
        country_seeds in prop::collection::vec(0usize..1_000, 1..6),
        interest_seeds in prop::collection::vec(0usize..100_000, 0..4),
        use_gender in any::<bool>(),
        male in any::<bool>(),
        lo in 13u8..=65,
        span in 0u8..53,
    ) {
        let world = world();
        let analyzer = analyzer();
        let api = AdsManagerApi::new(world, ReportingEra::Post2018);
        let gender = use_gender.then(|| if male { Gender::Male } else { Gender::Female });
        let hi = lo.saturating_add(span).min(65);
        let builder = stage(worldwide, &country_seeds, &interest_seeds, gender, Some((lo, hi)));
        let spec = builder.build().expect("staged spec is valid by construction");

        let analysis = analyzer.analyze(&spec);
        let true_reach = api.true_reach(&spec);
        prop_assert!(
            analysis.interval.contains(true_reach),
            "interval {:?} must contain true reach {true_reach} for {spec:?}",
            analysis.interval,
        );
        prop_assert!(analysis.interval.lower <= analysis.interval.upper);
    }

    /// Soundness of the contradiction verdict: a spec the analyzer proves
    /// contradictory matches no sampled user under the direct semantics.
    #[test]
    fn contradictory_spec_matches_no_sampled_user(
        bogus_interest in any::<bool>(),
        worldwide in any::<bool>(),
        country_seeds in prop::collection::vec(0usize..1_000, 1..6),
        interest_seeds in prop::collection::vec(0usize..100_000, 0..4),
        lo in 21u8..=65,
        drop in 1u8..8,
    ) {
        let world = world();
        let analyzer = analyzer();
        let mut builder =
            stage(worldwide, &country_seeds, &interest_seeds, None, None);
        if bogus_interest {
            // An interest id beyond the catalog: carried by no user, flagged
            // UnknownInterest (Contradiction) by the analyzer.
            let beyond = world.catalog().len() as u32 + 7;
            builder = builder.interest(InterestId(beyond));
        } else {
            // A reversed age window: admits no age at all.
            builder = builder.age_range(lo, lo - drop);
        }

        let analysis = analyzer.analyze_raw(&builder);
        prop_assert!(analysis.is_contradictory(), "findings: {:?}", analysis.findings);
        prop_assert!(analysis.provably_empty());
        for user in cohort() {
            prop_assert!(
                !raw_spec_matches(&builder, user),
                "contradictory spec matched a user: {:?}",
                analysis.findings,
            );
        }
    }
}
