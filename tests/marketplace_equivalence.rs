//! Zero-competition marketplace equivalence: routing delivery through a
//! marketplace with **no** background campaigns must reproduce the legacy
//! isolated path **bit-identically** — every `f64` compared via `to_bits`,
//! every counter exactly equal — at any worker count. The contract holds
//! because an empty market returns `Contention::NONE` (factors exactly
//! `1.0`, which are IEEE-754 no-ops under multiplication) and the market
//! summary seed is derived by XOR instead of an extra RNG draw, leaving the
//! legacy delivery stream untouched.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;
use unique_on_facebook::adplatform::campaign::Schedule;
use unique_on_facebook::adplatform::delivery::{
    simulate_delivery, simulate_delivery_in, DeliveryModel, DeliveryReport, ImpressionMarket,
    MatchedAudience,
};
use unique_on_facebook::marketplace::{Marketplace, MarketplaceConfig};
use unique_on_facebook::nanotarget::{
    run_experiment, run_experiment_in, ExperimentConfig, ExperimentResult,
};
use unique_on_facebook::population::{MaterializedUser, World, WorldConfig};

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::generate(WorldConfig::test_scale(2021)).unwrap())
}

fn empty_market() -> &'static Marketplace {
    static MARKET: OnceLock<Marketplace> = OnceLock::new();
    MARKET.get_or_init(|| Marketplace::setup(world(), MarketplaceConfig::seeded(2021, 0)).unwrap())
}

/// Every field of a report, with floats as raw bits, so equality is exact.
#[allow(clippy::type_complexity)]
fn report_bits(r: &DeliveryReport) -> (bool, u64, u64, u64, Option<u64>, u64, u64, u64) {
    (
        r.target_seen,
        r.reached,
        r.impressions,
        r.target_impressions,
        r.time_to_first_impression_hours.map(f64::to_bits),
        r.cost_eur.to_bits(),
        r.clicks,
        r.unique_click_ips,
    )
}

/// The thread counts the satellite pins: `UOF_THREADS` 1, 4, and the
/// session default (`None` = whatever the pool already decided).
const THREAD_COUNTS: [Option<usize>; 3] = [Some(1), Some(4), None];

fn at_thread_count<T>(threads: Option<usize>, run: impl Fn() -> T) -> T {
    match threads {
        Some(t) => rayon::with_thread_count(t, run),
        None => run(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn zero_competition_delivery_is_bit_identical_across_thread_counts(
        others in 0u64..100_000,
        target in any::<bool>(),
        budget_cents in 100u64..5_000,
        seed in 0u64..500,
    ) {
        let model = DeliveryModel::default();
        let schedule = Schedule::paper_experiment();
        let budget = budget_cents as f64 / 100.0;
        let legacy = simulate_delivery(
            &model,
            MatchedAudience { target_matches: target, others },
            &schedule,
            budget,
            seed,
        );
        let legacy_bits = report_bits(&legacy);
        for threads in THREAD_COUNTS {
            let market = at_thread_count(threads, || {
                simulate_delivery_in(
                    &model,
                    MatchedAudience { target_matches: target, others },
                    &schedule,
                    budget,
                    seed,
                    Some(empty_market() as &dyn ImpressionMarket),
                )
            });
            prop_assert_eq!(
                report_bits(&market),
                legacy_bits,
                "market path drifted from legacy at threads={:?}",
                threads
            );
        }
    }
}

fn experiment_fixture() -> (&'static World, Vec<MaterializedUser>) {
    let world = world();
    let mut rng = StdRng::seed_from_u64(99);
    let targets: Vec<MaterializedUser> =
        (0..2).map(|_| world.materializer().sample_user_with_count(&mut rng, 120)).collect();
    (world, targets)
}

fn experiment_bits(result: &ExperimentResult) -> Vec<(usize, usize, bool, u64, u64, u64)> {
    result
        .rows
        .iter()
        .map(|r| {
            (r.user_index, r.interest_count, r.seen, r.reached, r.impressions, r.cost_eur.to_bits())
        })
        .collect()
}

#[test]
fn zero_competition_experiment_matches_isolated_run() {
    let (world, targets) = experiment_fixture();
    let refs: Vec<&MaterializedUser> = targets.iter().collect();
    let config = ExperimentConfig::default();
    let isolated = run_experiment(world, &refs, &config).unwrap();
    for threads in THREAD_COUNTS {
        let through_market = at_thread_count(threads, || {
            run_experiment_in(world, &refs, &config, Some(empty_market() as &dyn ImpressionMarket))
                .unwrap()
        });
        assert_eq!(isolated.rows, through_market.rows, "rows drifted at threads={threads:?}");
        assert_eq!(
            experiment_bits(&isolated),
            experiment_bits(&through_market),
            "f64 bits drifted at threads={threads:?}"
        );
    }
}

#[test]
fn marketplace_setup_is_thread_count_invariant() {
    // A contended marketplace (population sampling + pacing fixed point +
    // contention Monte-Carlo) must also be a pure function of its seed,
    // regardless of worker count.
    let config = || MarketplaceConfig::seeded(9, 32);
    let baseline = rayon::with_thread_count(1, || Marketplace::setup(world(), config()).unwrap());
    let probe = |m: &Marketplace| -> Vec<(u64, u64)> {
        [0u64, 7, 991]
            .iter()
            .map(|&s| {
                let c = m.contention_for(0.001, 0.01, s);
                (c.win_rate_factor.to_bits(), c.price_factor.to_bits())
            })
            .collect()
    };
    for threads in THREAD_COUNTS {
        let market = at_thread_count(threads, || Marketplace::setup(world(), config()).unwrap());
        assert_eq!(baseline.campaigns(), market.campaigns(), "population drifted at {threads:?}");
        assert_eq!(baseline.pacing(), market.pacing(), "pacing drifted at {threads:?}");
        assert_eq!(probe(&baseline), probe(&market), "contention drifted at {threads:?}");
    }
}
