//! Integration: the uniqueness data collection driven through the real TCP
//! reach API, end to end, matching the in-process pipeline.

use std::sync::Arc;
use unique_on_facebook::adplatform::reach::{AdsManagerApi, ReportingEra};
use unique_on_facebook::adplatform::targeting::TargetingSpec;
use unique_on_facebook::population::{World, WorldConfig};
use unique_on_facebook::reach_api::server::ServerConfig;
use unique_on_facebook::reach_api::{ReachClient, ReachServer};

#[test]
fn networked_collection_matches_in_process() {
    let world = Arc::new(World::generate(WorldConfig::test_scale(31)).unwrap());
    let server = ReachServer::start(Arc::clone(&world), ServerConfig::default()).unwrap();
    let mut client = ReachClient::connect(server.addr()).unwrap();
    let api = AdsManagerApi::new(&world, ReportingEra::Early2017);

    let user = world.materializer().sample_cohort(1, 8).pop().unwrap();
    let sequence: Vec<u32> = user.interests.iter().take(12).map(|i| i.0).collect();
    let locations = ["US", "ES", "FR", "BR", "MX"];

    for n in 1..=sequence.len() {
        let networked = client.potential_reach(&locations, &sequence[..n]).unwrap();
        let mut builder = TargetingSpec::builder();
        for code in locations {
            builder = builder.location(unique_on_facebook::population::CountryCode::new(code));
        }
        let spec = builder
            .interests(sequence[..n].iter().map(|&i| unique_on_facebook::population::InterestId(i)))
            .build()
            .unwrap();
        let direct = api.potential_reach(&spec);
        assert_eq!(networked.reported, direct.reported, "mismatch at n={n}");
        assert_eq!(networked.floored, direct.floored);
    }
    assert_eq!(server.requests_served(), sequence.len() as u64);
}
