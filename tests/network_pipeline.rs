//! Integration: the uniqueness data collection driven through the real TCP
//! reach API, end to end, matching the in-process pipeline.

use std::sync::Arc;
use unique_on_facebook::adplatform::reach::{AdsManagerApi, ReportingEra};
use unique_on_facebook::adplatform::targeting::TargetingSpec;
use unique_on_facebook::population::{World, WorldConfig};
use unique_on_facebook::reach_api::server::ServerConfig;
use unique_on_facebook::reach_api::{ReachClient, ReachServer};

#[test]
fn networked_collection_matches_in_process() {
    let world = Arc::new(World::generate(WorldConfig::test_scale(31)).unwrap());
    let server = ReachServer::start(Arc::clone(&world), ServerConfig::default()).unwrap();
    let mut client = ReachClient::connect(server.addr()).unwrap();
    let api = AdsManagerApi::new(&world, ReportingEra::Early2017);

    let user = world.materializer().sample_cohort(1, 8).pop().unwrap();
    let sequence: Vec<u32> = user.interests.iter().take(12).map(|i| i.0).collect();
    let locations = ["US", "ES", "FR", "BR", "MX"];

    for n in 1..=sequence.len() {
        let networked = client.potential_reach(&locations, &sequence[..n]).unwrap();
        let mut builder = TargetingSpec::builder();
        for code in locations {
            builder = builder.location(unique_on_facebook::population::CountryCode::new(code));
        }
        let spec = builder
            .interests(sequence[..n].iter().map(|&i| unique_on_facebook::population::InterestId(i)))
            .build()
            .unwrap();
        let direct = api.potential_reach(&spec);
        assert_eq!(networked.reported, direct.reported, "mismatch at n={n}");
        assert_eq!(networked.floored, direct.floored);
    }
    assert_eq!(server.requests_served(), sequence.len() as u64);
}

#[test]
fn cached_and_uncached_servers_agree_over_sockets() {
    // Two servers over one world — the query cache pinned on for one and
    // off for the other (explicit configs, immune to `UOF_REACH_CACHE`).
    // Every answer must agree, including repeats the cached server serves
    // from memory, because a cached reach is bit-identical to a recomputed
    // one before the floor is applied.
    use unique_on_facebook::reach_cache::CacheConfig;
    let world = Arc::new(World::generate(WorldConfig::test_scale(31)).unwrap());
    let cached = ReachServer::start(
        Arc::clone(&world),
        ServerConfig { cache: CacheConfig::default(), ..ServerConfig::default() },
    )
    .unwrap();
    let uncached = ReachServer::start(
        Arc::clone(&world),
        ServerConfig { cache: CacheConfig::disabled(), ..ServerConfig::default() },
    )
    .unwrap();
    let mut on = ReachClient::connect(cached.addr()).unwrap();
    let mut off = ReachClient::connect(uncached.addr()).unwrap();

    let user = world.materializer().sample_cohort(1, 8).pop().unwrap();
    let sequence: Vec<u32> = user.interests.iter().take(10).map(|i| i.0).collect();
    let locations = ["US", "ES", "FR", "BR", "MX"];
    for n in 1..=sequence.len() {
        let first = on.potential_reach(&locations, &sequence[..n]).unwrap();
        let repeat = on.potential_reach(&locations, &sequence[..n]).unwrap();
        let fresh = off.potential_reach(&locations, &sequence[..n]).unwrap();
        assert_eq!(first, repeat, "cached repeat diverged at n={n}");
        assert_eq!(first, fresh, "cached vs uncached diverged at n={n}");
    }

    let stats = on.cache_stats().unwrap();
    assert!(stats.enabled && stats.hits > 0, "repeats must hit the cache: {stats:?}");
    assert!(!off.cache_stats().unwrap().enabled);
}

#[test]
fn nested_protocol_collects_every_prefix_in_one_round_trip() {
    // The paper's bulk collection: one nested request returns the reach of
    // every prefix of the interest sequence, identical to issuing the
    // scalar queries one by one.
    let world = Arc::new(World::generate(WorldConfig::test_scale(31)).unwrap());
    let server = ReachServer::start(Arc::clone(&world), ServerConfig::default()).unwrap();
    let mut client = ReachClient::connect(server.addr()).unwrap();

    let user = world.materializer().sample_cohort(1, 5).pop().unwrap();
    let sequence: Vec<u32> = user.interests.iter().take(10).map(|i| i.0).collect();
    let locations = ["US", "ES"];

    let bulk = client.nested_reach(&locations, &sequence).unwrap();
    assert_eq!(bulk.len(), sequence.len());
    for (n, point) in bulk.iter().enumerate() {
        let scalar = client.potential_reach(&locations, &sequence[..=n]).unwrap();
        assert_eq!(*point, scalar, "nested prefix {n} diverged from scalar query");
    }
    assert!(bulk.windows(2).all(|w| w[1].reported <= w[0].reported));
}
