//! Cross-crate integration: world → cohort → uniqueness model →
//! nanotargeting experiment → countermeasures, at test scale.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;
use unique_on_facebook::adplatform::reach::{AdsManagerApi, ReportingEra};
use unique_on_facebook::fdvt::dataset::CohortConfig;
use unique_on_facebook::fdvt::FdvtDataset;
use unique_on_facebook::nanotarget::countermeasures::evaluate_all;
use unique_on_facebook::nanotarget::{run_experiment, ExperimentConfig};
use unique_on_facebook::population::{MaterializedUser, World, WorldConfig};
use unique_on_facebook::uniqueness::np::NpTable;
use unique_on_facebook::uniqueness::{AudienceVectors, SelectionStrategy};

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::generate(WorldConfig::test_scale(2021)).unwrap())
}

fn cohort() -> &'static FdvtDataset {
    static COHORT: OnceLock<FdvtDataset> = OnceLock::new();
    COHORT.get_or_init(|| {
        FdvtDataset::generate(
            world(),
            CohortConfig { size: 300, seed: 3, demographic_effects: false },
        )
    })
}

#[test]
fn full_uniqueness_pipeline_produces_paper_shaped_table() {
    let api = AdsManagerApi::new(world(), ReportingEra::Early2017);
    let profiles: Vec<&MaterializedUser> = cohort().users.iter().map(|u| &u.profile).collect();
    let lp = AudienceVectors::collect(&api, &profiles, SelectionStrategy::LeastPopular, 1);
    let random = AudienceVectors::collect(&api, &profiles, SelectionStrategy::Random, 1);
    let table = NpTable::build(&lp, &random, 200, 7).unwrap();

    // Shape assertions that hold at any scale:
    // (1) LP needs far fewer interests than random at every P;
    for (l, r) in table.lp.iter().zip(&table.random) {
        assert!(l.value < r.value, "LP {} !< R {} at P={}", l.value, r.value, l.p);
    }
    // (2) N_P grows with P within each strategy;
    for row in [&table.lp, &table.random] {
        for pair in row.windows(2) {
            assert!(pair[1].value >= pair[0].value);
        }
    }
    // (3) fits are tight and CIs bracket the estimates.
    for cell in table.lp.iter().chain(&table.random) {
        assert!(cell.r_squared > 0.9, "R² {} at P={}", cell.r_squared, cell.p);
        let ci = cell.ci95.expect("bootstrap ran");
        assert!(ci.lo <= cell.value && cell.value <= ci.hi);
    }
}

#[test]
fn experiment_and_countermeasures_close_the_loop() {
    let mut rng = StdRng::seed_from_u64(17);
    let targets: Vec<MaterializedUser> =
        (0..3).map(|_| world().materializer().sample_user_with_count(&mut rng, 150)).collect();
    let refs: Vec<&MaterializedUser> = targets.iter().collect();
    let result = run_experiment(world(), &refs, &ExperimentConfig::default()).unwrap();
    assert_eq!(result.rows.len(), 21);
    let successes = result.successes().len();
    assert!(successes > 0, "some campaigns should nanotarget at test scale");

    // Every §8.3 policy blocks every successful campaign.
    for eval in evaluate_all(world(), &result) {
        assert!(
            eval.blocks_all_successes(),
            "policy {} leaked {}/{} successes",
            eval.policy,
            eval.successes_total - eval.successes_blocked,
            eval.successes_total
        );
    }
}

#[test]
fn floors_censor_consistently_across_eras() {
    let profiles: Vec<&MaterializedUser> =
        cohort().users.iter().take(60).map(|u| &u.profile).collect();
    let api17 = AdsManagerApi::new(world(), ReportingEra::Early2017);
    let api18 = AdsManagerApi::new(world(), ReportingEra::Post2018);
    let v17 = AudienceVectors::collect(&api17, &profiles, SelectionStrategy::Random, 5);
    let v18 = AudienceVectors::collect(&api18, &profiles, SelectionStrategy::Random, 5);
    // Same users, same sequences: the post-2018 rows dominate (the floor
    // only raises reported values).
    for (a, b) in v17.rows().iter().zip(v18.rows()) {
        for (x, y) in a.iter().zip(b) {
            assert!(y >= x, "post-2018 report {y} below 2017 report {x}");
        }
    }
    assert!(v18.rows().iter().flatten().all(|&v| v >= 1_000.0));
}

#[test]
fn fdvt_defence_shrinks_attack_surface() {
    use unique_on_facebook::fdvt::RiskReport;
    let user = cohort()
        .users
        .iter()
        .map(|u| &u.profile)
        .find(|p| p.interests.len() >= 30)
        .expect("a rich user");
    let engine = world().reach_engine();
    let mut report = RiskReport::build(user, world().catalog());
    let rarest_before = report.rows()[0].audience_size;
    report.remove_all_high_risk();
    if let Some(first_active) = report
        .rows()
        .iter()
        .find(|r| r.status == unique_on_facebook::fdvt::risk::InterestStatus::Active)
    {
        assert!(first_active.audience_size >= rarest_before);
    }
    // The engine agrees the remaining rarest interest has a bigger audience
    // than the pre-cleanup rarest one (no high-risk interests left).
    let remaining = report.active_interests();
    if let Some(&first) = remaining.first() {
        let reach = engine.single_reach(first);
        assert!(reach > 0.0);
    }
}
