//! Cross-thread-count determinism: every parallel number in the pipeline
//! must be **bit-identical** whether computed sequentially (`UOF_THREADS=1`)
//! or on any number of workers. The vendored rayon pool guarantees this by
//! partitioning work into blocks whose layout depends only on input length
//! and folding per-block partials in block order; these tests pin the
//! guarantee end to end through the public APIs.

use std::sync::OnceLock;
use unique_on_facebook::population::reach::CountryFilter;
use unique_on_facebook::population::{InterestId, World, WorldConfig};
use unique_on_facebook::stats::bootstrap_ci;

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::generate(WorldConfig::test_scale(2021)).unwrap())
}

/// Interest sequences shaped like the paper's audiences: prefixes of a
/// spread-out id walk, from broad single interests to deep conjunctions.
fn sequences() -> Vec<Vec<InterestId>> {
    (0..6u32)
        .map(|s| (0..20u32).map(|i| InterestId((s * 101 + i * 37) % 2_000)).collect())
        .collect()
}

#[test]
fn conjunction_reach_bit_identical_across_thread_counts() {
    let engine = world().reach_engine();
    let filter = CountryFilter::ALL;
    let baseline: Vec<u64> = rayon::with_thread_count(1, || {
        sequences().iter().map(|seq| engine.conjunction_reach_in(seq, filter).to_bits()).collect()
    });
    for threads in [2, 3, 4, 8] {
        let got: Vec<u64> = rayon::with_thread_count(threads, || {
            sequences()
                .iter()
                .map(|seq| engine.conjunction_reach_in(seq, filter).to_bits())
                .collect()
        });
        assert_eq!(got, baseline, "conjunction reach drifted at {threads} threads");
    }
}

#[test]
fn nested_reaches_bit_identical_across_thread_counts() {
    let engine = world().reach_engine();
    let filter = CountryFilter::from_bits(0b1011_0101);
    let seq = &sequences()[0];
    let baseline: Vec<u64> = rayon::with_thread_count(1, || {
        engine.nested_reaches_in(seq, filter).iter().map(|v| v.to_bits()).collect()
    });
    for threads in [2, 5, 8] {
        let got: Vec<u64> = rayon::with_thread_count(threads, || {
            engine.nested_reaches_in(seq, filter).iter().map(|v| v.to_bits()).collect()
        });
        assert_eq!(got, baseline, "nested reaches drifted at {threads} threads");
    }
}

#[test]
fn bootstrap_ci_bit_identical_across_thread_counts() {
    let data: Vec<f64> = (0..300).map(|i| ((i * 271) % 97) as f64 / 7.0).collect();
    let statistic =
        |idx: &[usize]| Some(idx.iter().map(|&i| data[i]).sum::<f64>() / idx.len() as f64);
    let (ci_seq, values_seq) = rayon::with_thread_count(1, || {
        bootstrap_ci(data.len(), 600, 0.95, 2021, statistic).unwrap()
    });
    for threads in [2, 4, 7] {
        let (ci, values) = rayon::with_thread_count(threads, || {
            bootstrap_ci(data.len(), 600, 0.95, 2021, statistic).unwrap()
        });
        assert_eq!(ci.lo.to_bits(), ci_seq.lo.to_bits(), "{threads} threads");
        assert_eq!(ci.hi.to_bits(), ci_seq.hi.to_bits(), "{threads} threads");
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&values), bits(&values_seq), "{threads} threads");
    }
}

#[test]
fn world_generation_bit_identical_across_thread_counts() {
    // World generation runs taste-vector calibration through the pool; the
    // resulting panel must not depend on worker count either.
    let a = rayon::with_thread_count(1, || World::generate(WorldConfig::test_scale(7)).unwrap());
    let b = rayon::with_thread_count(4, || World::generate(WorldConfig::test_scale(7)).unwrap());
    let engine_a = a.reach_engine();
    let engine_b = b.reach_engine();
    for seq in sequences() {
        assert_eq!(
            engine_a.conjunction_reach_in(&seq, CountryFilter::ALL).to_bits(),
            engine_b.conjunction_reach_in(&seq, CountryFilter::ALL).to_bits(),
        );
    }
}
