//! Gates `cargo test` on the xtask lint engine: the workspace tree must be
//! lint-clean (zero unwaivered violations), and the engine itself must still
//! catch a seeded violation — so a silently broken linter cannot pass.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = xtask::lint_workspace(root).expect("workspace tree is readable");
    assert!(
        findings.is_empty(),
        "lint violations (waive with `// lint:allow(<rule>) — reason`):\n{}",
        findings.iter().map(|f| format!("  {f}\n")).collect::<String>()
    );
}

#[test]
fn lint_catches_a_library_unwrap_fixture() {
    let fixture =
        "pub fn load(path: &str) -> String {\n    std::fs::read_to_string(path).unwrap()\n}\n";
    let findings = xtask::lint_source(fixture, xtask::FileClass::STRICT);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, xtask::Rule::NoUnwrap);
    assert_eq!(findings[0].line, 2);
}

#[test]
fn lint_cli_classification_matches_workspace_layout() {
    // Spot-check that the gate lints what we think it lints.
    let lib = xtask::classify(Path::new("crates/fbsim-adplatform/src/analyze.rs")).unwrap();
    assert!(lib.library && lib.simulation);
    assert!(xtask::classify(Path::new("vendor/serde/src/lib.rs")).is_none());
}
