//! Gates `cargo test` on the xtask lint engine: the workspace tree must be
//! lint-clean (zero active findings), the waiver count must fit the
//! checked-in budget, the JSON report must be byte-identical at any thread
//! count, DESIGN.md §8 must document exactly the rules the engine enforces —
//! and the engine itself must still catch seeded violations, so a silently
//! broken linter cannot pass.

use std::path::Path;

fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_lint_clean() {
    let findings = xtask::lint_workspace(root()).expect("workspace tree is readable");
    assert!(
        findings.is_empty(),
        "lint violations (waive with `// lint:allow(<rule>) — reason`):\n{}",
        findings.iter().map(|f| format!("  {f}\n")).collect::<String>()
    );
}

#[test]
fn waiver_count_fits_budget() {
    let inventory = xtask::waiver_inventory(root()).expect("workspace tree is readable");
    assert!(
        inventory.len() <= xtask::WAIVER_BUDGET,
        "{} waivers exceed the budget of {} — pay down debt or raise \
         xtask::WAIVER_BUDGET as a reviewed change:\n{}",
        inventory.len(),
        xtask::WAIVER_BUDGET,
        inventory.iter().map(|w| format!("  {w}\n")).collect::<String>()
    );
    // Every inventoried waiver carries a substantive reason by construction
    // (reasonless waivers surface as bad-waiver findings instead); pin that.
    for site in &inventory {
        assert!(!site.waiver.reason.is_empty(), "reasonless waiver in inventory: {site}");
        assert!(!site.waiver.rules.is_empty(), "ruleless waiver in inventory: {site}");
    }
}

#[test]
fn lint_catches_a_library_unwrap_fixture() {
    let fixture =
        "pub fn load(path: &str) -> String {\n    std::fs::read_to_string(path).unwrap()\n}\n";
    let findings = xtask::lint_source(fixture, xtask::FileClass::STRICT);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, xtask::Rule::NoUnwrap);
    assert_eq!(findings[0].line, 2);
}

#[test]
fn lint_catches_seeded_contract_violations() {
    // One seeded fixture per workspace-contract rule, so no rule can rot
    // into a no-op unnoticed.
    let env = "pub fn scale() -> u64 {\n    std::env::var(\"UOF_SCALE\").map(|s| s.len() as u64).unwrap_or(1)\n}\n";
    assert!(xtask::lint_source(env, xtask::FileClass::STRICT)
        .iter()
        .any(|v| v.rule == xtask::Rule::EnvReadOutsideConfig));

    let iter = "use std::collections::HashMap;\npub fn sum(m: &HashMap<u8, u8>) -> u32 {\n    m.values().map(|v| u32::from(*v)).sum()\n}\n";
    assert!(xtask::lint_source(iter, xtask::FileClass::STRICT)
        .iter()
        .any(|v| v.rule == xtask::Rule::HashMapIteration));

    let clock = "pub fn stamp() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    assert!(xtask::lint_source(clock, xtask::FileClass::STRICT)
        .iter()
        .any(|v| v.rule == xtask::Rule::WallclockInSim));

    let typo = "pub fn f() -> u8 {\n    // lint:allow(no-unwarp) — typo'd rule name\n    0\n}\n";
    assert!(xtask::lint_source(typo, xtask::FileClass::STRICT)
        .iter()
        .any(|v| v.rule == xtask::Rule::BadWaiver));
}

#[test]
fn lint_ignores_decoys_the_line_scanner_missed() {
    // Violating-looking text inside comments and string literals must not
    // fire: this is the tentpole property of the token-level engine.
    let decoys = "/* x.unwrap() then panic!(\"no\") /* nested */ still comment */\npub fn f() -> &'static str {\n    r#\"calls .unwrap() and \" panic!(\"inside\") \"#\n}\npub fn g() -> &'static str {\n    \"first\n    y.unwrap();\n    z == 1.0\n    \"\n}\n";
    let findings = xtask::lint_source(decoys, xtask::FileClass::STRICT);
    assert!(findings.is_empty(), "decoys fired: {findings:?}");
}

#[test]
fn lint_json_is_thread_count_invariant() {
    // The JSON bytes are part of the report contract: the parallel walk
    // must not be observable in the output.
    let sequential = rayon::with_thread_count(1, || {
        xtask::lint_workspace_report(root()).expect("workspace tree is readable")
    });
    let pooled = rayon::with_thread_count(4, || {
        xtask::lint_workspace_report(root()).expect("workspace tree is readable")
    });
    let default = xtask::lint_workspace_report(root()).expect("workspace tree is readable");
    assert_eq!(sequential.to_json(), pooled.to_json(), "1 thread vs 4 threads");
    assert_eq!(sequential.to_json(), default.to_json(), "1 thread vs default pool");
}

#[test]
fn lint_json_round_trips_byte_identically() {
    let report = xtask::lint_workspace_report(root()).expect("workspace tree is readable");
    let text = report.to_json();
    let value = xtask::json::parse(&text).expect("report JSON parses");
    assert_eq!(value.to_json_string(), text, "emit(parse(text)) == text");
}

#[test]
fn design_doc_rule_table_matches_engine() {
    // DESIGN.md §8's rule table must list exactly the rules the engine
    // enforces — no phantom documentation, no undocumented rules. Table
    // rows name rules in backticked first columns: `| `name` | … |`.
    let design = std::fs::read_to_string(root().join("DESIGN.md")).expect("DESIGN.md exists");
    let section: String = design
        .lines()
        .skip_while(|l| !l.starts_with("## 8."))
        .skip(1)
        .take_while(|l| !l.starts_with("## "))
        .map(|l| format!("{l}\n"))
        .collect();
    assert!(!section.is_empty(), "DESIGN.md has a §8");
    let mut documented: Vec<String> = section
        .lines()
        .filter_map(|l| {
            let row = l.trim().strip_prefix("| `")?;
            let name = row.split('`').next()?;
            name.chars().all(|c| c.is_ascii_lowercase() || c == '-').then(|| name.to_string())
        })
        .collect();
    documented.sort();
    documented.dedup();
    let mut enforced: Vec<String> = xtask::Rule::ALL.iter().map(|r| r.name().to_string()).collect();
    enforced.sort();
    assert_eq!(
        documented, enforced,
        "DESIGN.md §8 rule table and xtask::Rule::ALL must list the same rules"
    );
}

#[test]
fn lint_cli_classification_matches_workspace_layout() {
    // Spot-check that the gate lints what we think it lints.
    let lib = xtask::classify(Path::new("crates/fbsim-adplatform/src/analyze.rs")).unwrap();
    assert!(lib.library && lib.simulation && lib.order_policed && lib.wallclock_policed);
    let cache = xtask::classify(Path::new("crates/reach-cache/src/cache.rs")).unwrap();
    assert!(cache.order_policed, "cache hits must be hash-order-free");
    let telemetry = xtask::classify(Path::new("crates/uof-telemetry/src/clock.rs")).unwrap();
    assert!(!telemetry.wallclock_policed, "telemetry exists to read the clock");
    assert!(xtask::classify(Path::new("vendor/serde/src/lib.rs")).is_none());
}
