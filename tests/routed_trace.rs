//! End-to-end distributed-trace reconstruction: a pipelined window of
//! trace-tagged requests through a sharded router deployment must come back
//! as **complete** trace trees — every wire request exactly once, one
//! shard-labelled `client.request` hop per backend per fan-out, and every
//! hop nested inside its parent — when reconstructed by the same
//! `trace-report` analysis the xtask CLI runs.
//!
//! The driving client, the router (frame + handler spans), its per-backend
//! fan-out clients, and both shard servers all record into the
//! process-global telemetry here (`telemetry: None` on every config), so
//! one sink sees the whole deployment on one clock origin. A real
//! deployment would write one JSONL file per process and concatenate; the
//! tree reconstruction is identical either way because identity lives in
//! the `(trace_id, span_id)` pairs, not in the sink.

use std::sync::{Arc, Mutex};

use fbsim_population::index::IndexConfig;
use fbsim_population::{ShardSpec, World, WorldConfig};
use reach_api::server::{RateLimitConfig, ServerConfig};
use reach_api::{ReachClient, ReachRequest, ReachResponse, ReachRouter, ReachServer, RouterConfig};
use xtask::trace_report::{analyze, parse_trace, Analysis, SpanRec};

const SHARDS: u32 = 2;
const REQUESTS: usize = 12;

/// An `io::Write` trace sink the test can inspect after detaching.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn generous() -> RateLimitConfig {
    RateLimitConfig { capacity: 1e6, refill_per_second: 1e6 }
}

/// The spans of one trace, resolved to records.
fn spans_of<'a>(analysis: &'a Analysis, tree: &xtask::trace_report::TraceTree) -> Vec<&'a SpanRec> {
    tree.spans.iter().map(|&i| &analysis.spans[i]).collect()
}

#[test]
fn routed_pipelined_requests_reconstruct_complete_traces() {
    let world = Arc::new(World::generate(WorldConfig::test_scale(2021)).unwrap());
    let backends: Vec<ReachServer> = (0..SHARDS)
        .map(|index| {
            ReachServer::start(
                Arc::clone(&world),
                ServerConfig {
                    shard: Some(ShardSpec { index, count: SHARDS }),
                    index: IndexConfig::enabled(),
                    rate_limit: generous(),
                    ..ServerConfig::default()
                },
            )
            .expect("bind shard backend")
        })
        .collect();
    let router = ReachRouter::start(
        Arc::clone(&world),
        backends.iter().map(ReachServer::addr).collect(),
        RouterConfig { rate_limit: generous(), ..RouterConfig::default() },
    )
    .expect("bind router");

    let telemetry = uof_telemetry::global();
    let was_enabled = telemetry.is_enabled();
    telemetry.set_enabled(true);
    let sink = SharedBuf::default();
    telemetry.attach_trace_writer(Box::new(sink.clone()));

    // One pipelined window: all requests written before any response is
    // read, so the server sees a real batch, not a ping-pong.
    let mut client = ReachClient::connect(router.addr()).unwrap();
    let requests: Vec<ReachRequest> = (0..REQUESTS as u32)
        .map(|i| ReachRequest::scalar(vec!["US".into(), "ES".into()], vec![i, i + 40]))
        .collect();
    let ids: Vec<u64> = requests.iter().map(|r| client.send(r).unwrap()).collect();
    for (request, id) in requests.iter().zip(ids) {
        match client.receive(request, id).unwrap() {
            ReachResponse::Reach { .. } => {}
            other => panic!("unexpected routed response: {other:?}"),
        }
    }
    drop(client);
    telemetry.flush_traces();
    telemetry.detach_trace_writer();
    telemetry.set_enabled(was_enabled);

    let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
    let analysis = analyze(parse_trace(&text).expect("trace stream parses strictly"));
    assert_eq!(analysis.identityless, 0, "tracing was on for the whole run");

    // Exactly one complete tree per wire request. (Engine spans inside the
    // shard computations start fresh roots of their own — childless, hence
    // never complete — so the count isolates the request trees.)
    assert_eq!(analysis.complete_traces(), REQUESTS, "{text}");

    // Every wire request appears exactly once across the stream: one
    // router frame each, one frame per shard backend each.
    let count = |name: &str| analysis.spans.iter().filter(|s| s.span == name).count();
    assert_eq!(count("router.frame"), REQUESTS);
    assert_eq!(count("server.frame"), REQUESTS * SHARDS as usize);

    let complete: Vec<_> = analysis.traces.iter().filter(|t| t.complete).collect();
    for tree in &complete {
        let spans = spans_of(&analysis, tree);
        let named =
            |name: &str| -> Vec<&&SpanRec> { spans.iter().filter(|s| s.span == name).collect() };

        // Shape: root client hop → router frame → routed handler →
        // one labelled client hop + server frame + shard handler per shard.
        let client_hops = named("client.request");
        // `root` indexes the analysis's span vector, not the tree's.
        let root = &analysis.spans[tree.root.expect("complete tree has a root")];
        assert_eq!(root.span, "client.request", "{root:?}");
        assert_eq!(client_hops.len(), 1 + SHARDS as usize);
        assert_eq!(named("router.frame").len(), 1);
        assert_eq!(named("reach.request.scalar").len(), 1);
        assert_eq!(named("server.frame").len(), SHARDS as usize);
        assert_eq!(named("reach.request.shard").len(), SHARDS as usize);

        // One hop per shard, each naming a distinct backend.
        let mut shards: Vec<u64> =
            client_hops.iter().filter_map(|s| s.field_u64("shard")).collect();
        shards.sort_unstable();
        assert_eq!(shards, (0..u64::from(SHARDS)).collect::<Vec<_>>(), "{client_hops:?}");

        // Per-hop durations nest within their parent: every span's
        // interval is contained in its parent's (one clock origin here, so
        // start/end are directly comparable). The shard hops deliberately
        // overlap each other — the fan-out writes all frames before
        // collecting — so they are bounded individually, not summed.
        let by_id = |id: u64| spans.iter().find(|s| s.span_id == id);
        for span in &spans {
            if span.parent_span_id == 0 {
                continue;
            }
            let parent = by_id(span.parent_span_id).expect("complete tree resolves parents");
            assert!(
                span.start_ns >= parent.start_ns
                    && span.start_ns + span.dur_ns <= parent.start_ns + parent.dur_ns,
                "child hop leaks outside its parent: {span:?} vs {parent:?}"
            );
        }

        // The frame spans carried their queue-wait decomposition.
        for frame in named("router.frame").iter().chain(named("server.frame").iter()) {
            assert!(frame.field_u64("queue_ns").is_some(), "{frame:?}");
        }
    }

    // The fan-out analysis sees one two-shard fan-out per request, rooted
    // at the routed handler span.
    let fanouts: Vec<_> =
        analysis.fanouts.iter().filter(|f| f.parent_span == "reach.request.scalar").collect();
    assert_eq!(fanouts.len(), REQUESTS, "{:?}", analysis.fanouts);
    for fanout in fanouts {
        assert_eq!(fanout.width, SHARDS as usize);
        assert!(fanout.straggler_shard < u64::from(SHARDS));
    }
}
