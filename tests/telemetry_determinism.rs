//! Telemetry is observation-only: every number the pipeline produces must be
//! **bit-identical** with telemetry disabled, enabled, and enabled with a
//! trace writer attached — at any thread count. The span guards sit directly
//! on the reach-engine and fit/bootstrap hot paths, so this gate fails if
//! instrumentation ever perturbs an actual computation.
//!
//! All modes are toggled at runtime on the process-global [`uof_telemetry`]
//! handle (the one the `span!` call sites record into), inside a single test
//! so no parallel test observes a half-toggled global.

use std::sync::{Arc, Mutex, OnceLock};

use fbsim_population::reach::CountryFilter;
use fbsim_population::{InterestId, World, WorldConfig};
use uniqueness::selection::SelectionStrategy;
use uniqueness::vectors::AudienceVectors;

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::generate(WorldConfig::test_scale(2021)).unwrap())
}

fn sequences() -> Vec<Vec<InterestId>> {
    (0..4u32)
        .map(|s| (0..16u32).map(|i| InterestId((s * 101 + i * 37) % 2_000)).collect())
        .collect()
}

/// Deterministic synthetic audience vectors following the paper's model.
fn vectors() -> AudienceVectors {
    let rows: Vec<Vec<f64>> = (0..60)
        .map(|u| {
            let jitter = 1.0 + 0.2 * ((u as f64 * 2.399).sin());
            (1..=25)
                .map(|n| (10f64.powf(7.7 - 7.0 * ((n + 1) as f64).log10()) * jitter).max(20.0))
                .collect()
        })
        .collect();
    AudienceVectors::from_rows(SelectionStrategy::Random, 20, rows)
}

/// Runs the instrumented hot paths — conjunction sweeps, a nested sweep, and
/// an `N_P` fit with bootstrap — and returns every produced float as bits.
fn workload() -> Vec<u64> {
    let engine = world().reach_engine();
    let mut bits = Vec::new();
    for seq in sequences() {
        bits.push(engine.conjunction_reach_in(&seq, CountryFilter::ALL).to_bits());
    }
    for v in engine.nested_reaches_in(&sequences()[0], CountryFilter::from_bits(0b1011)) {
        bits.push(v.to_bits());
    }
    let est = uniqueness::np::estimate_np(&vectors(), 0.9, 150, 7).unwrap();
    bits.push(est.value.to_bits());
    bits.push(est.r_squared.to_bits());
    let ci = est.ci95.unwrap();
    bits.push(ci.lo.to_bits());
    bits.push(ci.hi.to_bits());
    bits
}

/// An `io::Write` trace sink the test can inspect after detaching.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn outputs_bit_identical_across_telemetry_modes_and_thread_counts() {
    let telemetry = uof_telemetry::global();
    let was_enabled = telemetry.is_enabled();

    // Baseline: telemetry off, single-threaded.
    telemetry.set_enabled(false);
    let baseline = rayon::with_thread_count(1, workload);

    // Off, parallel.
    for threads in [2, 4] {
        assert_eq!(
            rayon::with_thread_count(threads, workload),
            baseline,
            "telemetry-off output drifted at {threads} threads"
        );
    }

    // Metrics on: spans record into the registry but outputs must not move.
    telemetry.set_enabled(true);
    for threads in [1, 4] {
        assert_eq!(
            rayon::with_thread_count(threads, workload),
            baseline,
            "telemetry-on output drifted at {threads} threads"
        );
    }
    // The engine spans actually recorded something while enabled.
    let snapshot = telemetry.snapshot();
    let engine_hist =
        snapshot.histogram("engine.conjunction_reach").expect("engine span histogram");
    assert!(engine_hist.count > 0, "{engine_hist:?}");
    assert!(snapshot.histogram("uniqueness.bootstrap").is_some(), "{snapshot:?}");

    // Tracing on: every span also emits a JSONL event; outputs still frozen.
    let sink = SharedBuf::default();
    telemetry.attach_trace_writer(Box::new(sink.clone()));
    for threads in [1, 4] {
        assert_eq!(
            rayon::with_thread_count(threads, workload),
            baseline,
            "tracing output drifted at {threads} threads"
        );
    }
    telemetry.flush_traces();
    telemetry.detach_trace_writer();

    // Context propagation: the same workload re-run under a span parented
    // by an explicit caller [`TraceContext`] — the wire-facing tracing mode
    // (a server parents its frame spans the same way). Outputs must stay
    // frozen at 1, 4, and the default thread count.
    let ctx_sink = SharedBuf::default();
    telemetry.attach_trace_writer(Box::new(ctx_sink.clone()));
    let ctx_workload = || {
        let _parent = uof_telemetry::global()
            .span("test.request")
            .child_of(Some(uof_telemetry::TraceContext { trace_id: 7, parent_span_id: 1 }))
            .start();
        workload()
    };
    for threads in [1, 4] {
        assert_eq!(
            rayon::with_thread_count(threads, ctx_workload),
            baseline,
            "context-propagated output drifted at {threads} threads"
        );
    }
    assert_eq!(ctx_workload(), baseline, "context-propagated output drifted at default threads");
    telemetry.flush_traces();
    telemetry.detach_trace_writer();
    telemetry.set_enabled(was_enabled);

    // The parented run emitted spans belonging to the caller's trace.
    let ctx_raw = ctx_sink.0.lock().unwrap().clone();
    let ctx_text = String::from_utf8(ctx_raw).unwrap();
    assert!(
        ctx_text.lines().any(|l| l.contains("\"test.request\"") && l.contains("\"trace_id\":7")),
        "no span joined the caller's trace: {ctx_text}"
    );

    // The trace stream is newline-delimited JSON naming the spans we ran.
    let raw = sink.0.lock().unwrap().clone();
    let text = String::from_utf8(raw).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "tracing produced no events");
    assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')), "non-JSON trace line");
    assert!(lines.iter().any(|l| l.contains("\"engine.conjunction_reach\"")), "{text}");
    assert!(lines.iter().any(|l| l.contains("\"uniqueness.fit\"")), "{text}");
}
