//! Failure injection: the pipeline's behaviour under degraded conditions —
//! exhausted rate limits, zero budgets, empty schedules/audiences, rejected
//! campaigns, and oversized network frames.

use std::io::Write;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use unique_on_facebook::adplatform::campaign::{
    CampaignManager, CampaignSpec, Creativity, Schedule,
};
use unique_on_facebook::adplatform::delivery::{simulate_delivery, DeliveryModel, MatchedAudience};
use unique_on_facebook::adplatform::policy::MinActiveAudiencePolicy;
use unique_on_facebook::adplatform::reach::{AdsManagerApi, ReportingEra};
use unique_on_facebook::adplatform::targeting::TargetingSpec;
use unique_on_facebook::population::{InterestId, World, WorldConfig};
use unique_on_facebook::reach_api::server::{RateLimitConfig, ServerConfig};
use unique_on_facebook::reach_api::{ClientError, ReachClient, ReachServer};

fn world() -> &'static World {
    use std::sync::OnceLock;
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::generate(WorldConfig::test_scale(77)).unwrap())
}

#[test]
fn zero_budget_delivers_nothing_billable() {
    let report = simulate_delivery(
        &DeliveryModel::default(),
        MatchedAudience { target_matches: true, others: 10_000 },
        &Schedule::paper_experiment(),
        0.0,
        3,
    );
    // No budget → no aggregate impressions and no spend; the pinned
    // target's own sessions can't be won either (fill ratio is 0).
    assert_eq!(report.cost_eur, 0.0);
    assert_eq!(report.impressions, report.target_impressions);
    assert!(!report.target_seen);
}

#[test]
fn rate_limit_exhaustion_surfaces_as_error() {
    let server = ReachServer::start(
        Arc::new(World::generate(WorldConfig::test_scale(5)).unwrap()),
        ServerConfig {
            era: ReportingEra::Early2017,
            // A bucket that effectively never refills.
            rate_limit: RateLimitConfig { capacity: 1.0, refill_per_second: 0.0001 },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = ReachClient::connect(server.addr()).unwrap();
    client.max_retries = 1;
    // First request drains the bucket…
    assert!(client.potential_reach(&["US"], &[0]).is_ok());
    // …the second exhausts the retry budget.
    match client.potential_reach(&["US"], &[1]) {
        Err(ClientError::RateLimitExhausted) => {}
        other => panic!("expected RateLimitExhausted, got {other:?}"),
    }
}

#[test]
fn oversized_frame_gets_error_and_disconnect() {
    let server = ReachServer::start(
        Arc::new(World::generate(WorldConfig::test_scale(5)).unwrap()),
        ServerConfig::default(),
    )
    .unwrap();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    // A single line far beyond MAX_FRAME.
    let garbage = vec![b'x'; 70 * 1024];
    stream.write_all(&garbage).unwrap();
    stream.write_all(b"\n").unwrap();
    // The server answers with an error frame and closes; reading to EOF
    // must terminate (no hang) and contain the error marker.
    use std::io::Read;
    let mut response = String::new();
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
    let _ = stream.read_to_string(&mut response);
    assert!(response.contains("frame too large"), "got: {response:?}");
}

#[test]
fn rejected_campaign_is_inert() {
    let api = AdsManagerApi::new(world(), ReportingEra::Post2018);
    let mut manager = CampaignManager::new(
        api,
        MinActiveAudiencePolicy::paper_proposal(),
        DeliveryModel::default(),
    );
    let spec = CampaignSpec {
        name: "too narrow".into(),
        targeting: TargetingSpec::builder()
            .worldwide()
            .interests((0..20).map(|i| InterestId(i * 97)))
            .build()
            .unwrap(),
        creativity: Creativity { title: "t".into(), landing_url: "u".into() },
        daily_budget_eur: 10.0,
        schedule: Schedule::paper_experiment(),
    };
    let mut rng = StdRng::seed_from_u64(1);
    let (id, violation) = manager.launch(&mut rng, spec, true).unwrap_err();
    assert!(violation.to_string().contains("active users"));
    // No report, no spend, stop is a no-op.
    assert!(manager.dashboard(id).is_none());
    manager.stop(id);
    assert!(matches!(
        manager.state(id),
        Some(unique_on_facebook::adplatform::CampaignState::Rejected(_))
    ));
}

#[test]
fn malformed_then_valid_requests_on_same_connection() {
    let server = ReachServer::start(
        Arc::new(World::generate(WorldConfig::test_scale(5)).unwrap()),
        ServerConfig::default(),
    )
    .unwrap();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"this is not json\n").unwrap();
    stream.write_all(b"{\"v\":1,\"locations\":[\"US\"],\"interests\":[0]}\n").unwrap();
    use std::io::Read;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 8192];
    let mut collected = String::new();
    while !collected.contains("reach") {
        let n = stream.read(&mut buf).unwrap();
        assert!(n > 0, "server closed before answering the valid request");
        collected.push_str(std::str::from_utf8(&buf[..n]).unwrap());
    }
    // First frame: an error; second: a reach answer — the connection
    // survives malformed input.
    assert!(collected.contains("malformed frame") || collected.contains("error"));
    assert!(collected.contains("reported"));
}

#[test]
fn unreachable_schedule_yields_empty_delivery() {
    // Audience present but the schedule has no hours the target browses in
    // (degenerate tiny window).
    let schedule = Schedule::new(vec![(0.0, 0.001)]).unwrap();
    let mut seen = 0;
    for seed in 0..20 {
        let report = simulate_delivery(
            &DeliveryModel::default(),
            MatchedAudience { target_matches: true, others: 0 },
            &schedule,
            10.0,
            seed,
        );
        if report.target_seen {
            seen += 1;
        }
        assert!(report.impressions <= 1);
    }
    // 0.001 active hours ≈ one session per 5,000 runs: effectively never.
    assert_eq!(seen, 0);
}
